package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/cluster"
	"hcoc/internal/engine"
	"hcoc/internal/query"
	"hcoc/internal/query/plan"
	"hcoc/internal/serve"
)

// maxBatchQueries mirrors the backend bound for batches the gateway
// evaluates itself (multi-release batches never reach a backend whole).
const maxBatchQueries = 4096

// groupRecord and hierarchyRequest mirror the backend upload shape —
// the gateway must parse uploads itself to fingerprint the tree, which
// is the ring key.
type groupRecord struct {
	Path []string `json:"path"`
	Size int64    `json:"size"`
}

type hierarchyRequest struct {
	Root   string        `json:"root"`
	Groups []groupRecord `json:"groups"`
}

// handleHierarchy fingerprints the upload locally and fans it out to
// all R ring owners in parallel, so replicas already hold the tree
// when a failover read or release arrives. One success is enough to
// answer (uploads are content-addressed and idempotent, so stragglers
// converge on retry); zero successes surface the last failure.
func (g *Gateway) handleHierarchy(w http.ResponseWriter, r *http.Request) {
	var req hierarchyRequest
	if !serve.DecodeJSON(w, r, &req) {
		return
	}
	if req.Root == "" {
		req.Root = "root"
	}
	if len(req.Groups) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "no groups in upload")
		return
	}
	groups := make([]hcoc.Group, len(req.Groups))
	for i, gr := range req.Groups {
		if gr.Size < 0 {
			serve.WriteError(w, http.StatusBadRequest, "group %d has negative size %d", i, gr.Size)
			return
		}
		groups[i] = hcoc.Group{Path: gr.Path, Size: gr.Size}
	}
	tree, err := hcoc.BuildHierarchy(req.Root, groups)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "building hierarchy: %v", err)
		return
	}
	fp := engine.FingerprintTree(tree)
	owners := g.cluster.Owners(fp)
	if len(owners) == 0 {
		writeClientError(w, cluster.ErrNoBackends)
		return
	}
	g.mu.Lock()
	g.fanouts++
	g.mu.Unlock()

	var wg sync.WaitGroup
	results := make([]client.Hierarchy, len(owners))
	errs := make([]error, len(owners))
	for i, u := range owners {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			c := g.client(u)
			if c == nil {
				errs[i] = fmt.Errorf("backend %s left the cluster", u)
				return
			}
			start := time.Now()
			h, err := c.UploadHierarchy(r.Context(), req.Root, groups)
			g.record(u, time.Since(start), err)
			g.reportHealth(u, err)
			results[i], errs[i] = h, err
		}(i, u)
	}
	wg.Wait()
	for i := range owners {
		if errs[i] == nil {
			serve.WriteJSON(w, http.StatusOK, results[i])
			return
		}
	}
	// All owners failed. Prefer an authoritative refusal (a terminal
	// APIError such as 507 store-full) over whichever transport error
	// happened to come last — it names what the caller can actually fix.
	for _, err := range errs {
		if terminal(err) {
			writeClientError(w, err)
			return
		}
	}
	writeClientError(w, errs[len(errs)-1])
}

// appendEventsRequest mirrors the backend event-append body.
type appendEventsRequest struct {
	Events []client.Event `json:"events"`
}

// handleAppendEvents fans an event append out to all R ring owners of
// the hierarchy in parallel, so every replica's event log advances to
// the same head. The caller's If-Match precondition forwards verbatim
// to each owner: a stale fingerprint conflicts identically everywhere,
// and against divergent replicas the first success answers while the
// conflicting owners surface in the next append. One success is enough
// to answer; zero successes prefer an authoritative refusal (conflict,
// validation) over whichever transport error came last.
func (g *Gateway) handleAppendEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req appendEventsRequest
	if !serve.DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "no events in request")
		return
	}
	ifMatch := strings.Trim(r.Header.Get("If-Match"), `"`)
	owners := g.cluster.Owners(hierarchyFP(id))
	if len(owners) == 0 {
		writeClientError(w, cluster.ErrNoBackends)
		return
	}
	g.mu.Lock()
	g.fanouts++
	g.mu.Unlock()

	var wg sync.WaitGroup
	results := make([]client.AppendResult, len(owners))
	errs := make([]error, len(owners))
	for i, u := range owners {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			c := g.client(u)
			if c == nil {
				errs[i] = fmt.Errorf("backend %s left the cluster", u)
				return
			}
			start := time.Now()
			res, err := c.AppendEvents(r.Context(), id, req.Events, ifMatch)
			g.record(u, time.Since(start), err)
			g.reportHealth(u, err)
			results[i], errs[i] = res, err
		}(i, u)
	}
	wg.Wait()
	for i := range owners {
		if errs[i] == nil {
			serve.WriteJSON(w, http.StatusOK, results[i])
			return
		}
	}
	for _, err := range errs {
		if terminal(err) {
			writeClientError(w, err)
			return
		}
	}
	writeClientError(w, errs[len(errs)-1])
}

// versionsResponse mirrors the backend version-listing body.
type versionsResponse struct {
	Hierarchy string                    `json:"hierarchy"`
	Root      string                    `json:"root,omitempty"`
	Head      int64                     `json:"head"`
	Versions  []client.HierarchyVersion `json:"versions"`
}

// handleVersions reads the version history from the hierarchy's
// primary, failing over down the replica order.
func (g *Gateway) handleVersions(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	order := g.routeHierarchy(hierarchyFP(id))
	var versions []client.HierarchyVersion
	err := g.forward(order, func(c *client.Client, u string) error {
		vs, err := c.HierarchyVersions(r.Context(), id)
		if err != nil {
			return err
		}
		versions = vs
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	resp := versionsResponse{Hierarchy: id, Versions: versions}
	if n := len(versions); n > 0 {
		resp.Head = versions[n-1].Version
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// scatter fans op across every live backend in parallel and
// concatenates the successful results (op closures carry their own
// request context). All-failed returns the last error; a dead cluster
// the typed ErrNoBackends.
func scatter[T any](g *Gateway, op func(c *client.Client) ([]T, error)) ([]T, error) {
	backends := g.cluster.Live()
	if len(backends) == 0 {
		return nil, cluster.ErrNoBackends
	}
	var wg sync.WaitGroup
	results := make([][]T, len(backends))
	errs := make([]error, len(backends))
	for i, u := range backends {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			c := g.client(u)
			if c == nil {
				errs[i] = fmt.Errorf("backend %s left the cluster", u)
				return
			}
			start := time.Now()
			out, err := op(c)
			g.record(u, time.Since(start), err)
			g.reportHealth(u, err)
			results[i], errs[i] = out, err
		}(i, u)
	}
	wg.Wait()
	var out []T
	ok := false
	var lastErr error
	for i := range backends {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		ok = true
		out = append(out, results[i]...)
	}
	if !ok {
		return nil, lastErr
	}
	return out, nil
}

// handleListHierarchies merges the hierarchy listings of every live
// backend, deduplicated by id (replication stores each tree R times).
func (g *Gateway) handleListHierarchies(w http.ResponseWriter, r *http.Request) {
	all, err := scatter(g, func(c *client.Client) ([]client.Hierarchy, error) {
		return c.Hierarchies(r.Context())
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	seen := make(map[string]bool, len(all))
	out := make([]client.Hierarchy, 0, len(all))
	for _, h := range all {
		if seen[h.ID] {
			continue
		}
		seen[h.ID] = true
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	serve.WriteJSON(w, http.StatusOK, out)
}

// handleListReleases merges the durable-artifact listings across the
// cluster, deduplicated by release id — and opportunistically learns
// release→hierarchy ownership from the merged metadata.
func (g *Gateway) handleListReleases(w http.ResponseWriter, r *http.Request) {
	all, err := scatter(g, func(c *client.Client) ([]client.ReleaseArtifact, error) {
		return c.Releases(r.Context())
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	seen := make(map[string]bool, len(all))
	out := make([]client.ReleaseArtifact, 0, len(all))
	for _, a := range all {
		if seen[a.Release] {
			continue
		}
		seen[a.Release] = true
		out = append(out, a)
		g.learnRelease(a.Release, hierarchyFP(a.Hierarchy))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Release < out[j].Release })
	serve.WriteJSON(w, http.StatusOK, out)
}

// releaseRequest mirrors the backend body, async flag included.
type releaseRequest struct {
	Hierarchy string   `json:"hierarchy"`
	Algorithm string   `json:"algorithm"`
	Epsilon   float64  `json:"epsilon"`
	K         int      `json:"k"`
	Methods   []string `json:"methods"`
	Merge     string   `json:"merge"`
	Seed      int64    `json:"seed"`
	Workers   int      `json:"workers"`
	Version   int64    `json:"version"`
	Async     bool     `json:"async"`
}

// handleRelease routes a release to the hierarchy's primary, failing
// over down the replica order; a fresh synchronous computation is then
// replicated to the remaining owners so failover reads serve identical
// bytes. Async jobs stay backend-local (the job table is not
// replicated) — the gateway records which backend runs each job.
func (g *Gateway) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !serve.DecodeJSON(w, r, &req) {
		return
	}
	if req.Hierarchy == "" {
		serve.WriteError(w, http.StatusBadRequest, "missing hierarchy; POST /v1/hierarchy first")
		return
	}
	fp := hierarchyFP(req.Hierarchy)
	order := g.routeHierarchy(fp)
	creq := client.ReleaseRequest{
		Hierarchy: req.Hierarchy,
		Algorithm: req.Algorithm,
		Epsilon:   req.Epsilon,
		K:         req.K,
		Methods:   req.Methods,
		Merge:     req.Merge,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Version:   req.Version,
	}

	if req.Async {
		var job client.Job
		err := g.forward(order, func(c *client.Client, u string) error {
			j, err := c.ReleaseAsync(r.Context(), creq)
			if err != nil {
				return err
			}
			job = j
			g.learnJob(j.Job, u)
			return nil
		})
		g.recordTenant(fp, err)
		if err != nil {
			writeClientError(w, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+job.Job)
		serve.WriteJSON(w, http.StatusAccepted, job)
		return
	}

	var rel client.Release
	var servedBy string
	err := g.forward(order, func(c *client.Client, u string) error {
		res, err := c.Release(r.Context(), creq)
		if err != nil {
			return err
		}
		rel, servedBy = res, u
		return nil
	})
	g.recordTenant(fp, err)
	if err != nil {
		writeClientError(w, err)
		return
	}
	g.learnRelease(rel.Release, fp)
	// Replicate only what this request actually computed: hits and
	// deduped answers were either replicated when first computed or
	// predate the gateway, and re-pushing them on every cache hit would
	// turn the hot path into artifact traffic. On a shared store the
	// computing backend's PutRelease already made the artifact durable
	// for every node, so the copy is pure redundant byte traffic —
	// skipped, and counted so operators can see the savings.
	if !rel.CacheHit && !rel.StoreHit && !rel.Deduped && !rel.PeerHit {
		if g.sharedStore {
			g.mu.Lock()
			g.replSkipped++
			g.mu.Unlock()
		} else {
			g.replicate(r.Context(), rel, servedBy, g.cluster.Owners(fp))
		}
	}
	serve.WriteJSON(w, http.StatusOK, rel)
}

// replicate copies a freshly computed artifact from the backend that
// computed it to the remaining ring owners (idempotent PUT). Best
// effort: a failed copy costs availability-on-failover, not
// correctness, and the next fresh computation retries the path.
func (g *Gateway) replicate(ctx context.Context, rel client.Release, servedBy string, owners []string) {
	targets := make([]string, 0, len(owners))
	for _, u := range owners {
		if u != servedBy {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		return
	}
	src := g.client(servedBy)
	if src == nil {
		return
	}
	sparse, epsilon, err := src.DownloadRelease(ctx, rel.Release)
	if err != nil {
		g.mu.Lock()
		g.replFailures++
		g.mu.Unlock()
		return
	}
	// The copies go out in parallel: the client's release response is
	// waiting on this, and R-1 sequential PUTs would stack transfer
	// latencies onto it.
	var wg sync.WaitGroup
	for _, u := range targets {
		c := g.client(u)
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(u string, c *client.Client) {
			defer wg.Done()
			_, err := c.ImportRelease(ctx, rel.Release, rel.Hierarchy, rel.Algorithm, rel.DurationMS, sparse, epsilon)
			g.reportHealth(u, err)
			g.mu.Lock()
			if err != nil {
				g.replFailures++
			} else {
				g.replications++
			}
			g.mu.Unlock()
		}(u, c)
	}
	wg.Wait()
}

// handleGetRelease proxies an artifact from the first replica that
// holds it, verbatim — the backend already renders both formats, so
// decoding and re-encoding here would only burn gateway CPU and
// memory. The body is buffered (not streamed) so a mid-transfer
// backend death can still fail over to the next replica cleanly.
func (g *Gateway) handleGetRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	if format != "" && format != "sparse" && format != "dense" {
		serve.WriteError(w, http.StatusBadRequest, "unknown artifact format %q (want sparse|dense)", format)
		return
	}
	order, err := g.orderForRelease(id)
	if err != nil {
		writeClientError(w, err)
		return
	}
	var body []byte
	err = g.forward(order, func(c *client.Client, u string) error {
		b, err := c.DownloadReleaseBytes(r.Context(), id, format)
		if err != nil {
			return err
		}
		body = b
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleGetJob polls the backend that runs the job when known, every
// live backend otherwise (a restarted gateway forgets the hint).
func (g *Gateway) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.mu.Lock()
	owner, ok := g.jobOwner[id]
	g.mu.Unlock()
	var order []string
	if ok {
		order = []string{owner}
	} else if order = g.cluster.Live(); len(order) == 0 {
		writeClientError(w, cluster.ErrNoBackends)
		return
	}
	var job client.Job
	err := g.forward(order, func(c *client.Client, u string) error {
		j, err := c.Job(r.Context(), id)
		if err != nil {
			return err
		}
		job = j
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, job)
}

// handleQuery forwards a node query down the owning release's replica
// order.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	node := r.PathValue("node")
	q := r.URL.Query()
	release := q.Get("release")
	if release == "" {
		serve.WriteError(w, http.StatusBadRequest, "missing release query parameter")
		return
	}
	quantiles, kth, topCode, ok := serve.ParseQueryParams(w, q)
	if !ok {
		return
	}
	params := client.QueryParams{Quantiles: quantiles, KthLargest: kth, TopCode: topCode}
	order, err := g.orderForRelease(release)
	if err != nil {
		writeClientError(w, err)
		return
	}
	var report client.NodeReport
	err = g.forward(order, func(c *client.Client, u string) error {
		rep, err := c.Query(r.Context(), release, node, params)
		if err != nil {
			return err
		}
		report = rep
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, report)
}

// batchQueryRequest mirrors the backend batch body.
type batchQueryRequest struct {
	Release string             `json:"release"`
	Queries []client.NodeQuery `json:"queries"`
}

// batchQueryResponse mirrors the backend batch response.
type batchQueryResponse struct {
	Release string              `json:"release"`
	Results []client.NodeResult `json:"results"`
}

// handleBatchQuery routes a batch by how many releases it spans. A
// batch over one release (any plain batch, and cross-release entries
// whose releases coincide) forwards whole to one replica of the owning
// release — the batch's one-engine-pass economics only hold on a single
// backend. A batch spanning releases that may live on different ring
// owners scatters the artifact downloads (each distinct release fetched
// exactly once, in parallel, down its own failover order) and evaluates
// the planned queries at the gateway.
func (g *Gateway) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	var req batchQueryRequest
	if !serve.DecodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "no queries in batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		serve.WriteError(w, http.StatusBadRequest, "batch of %d queries exceeds the %d-query limit", len(req.Queries), maxBatchQueries)
		return
	}
	distinct := distinctReleases(req)
	if legacy := isLegacyBatch(req); legacy && req.Release == "" {
		serve.WriteError(w, http.StatusBadRequest, "missing release")
		return
	} else if legacy || len(distinct) <= 1 {
		g.forwardBatchQuery(w, r, req)
		return
	}
	g.crossBatchQuery(w, r, req, distinct)
}

// forwardBatchQuery sends the whole batch down one release's failover
// order.
func (g *Gateway) forwardBatchQuery(w http.ResponseWriter, r *http.Request, req batchQueryRequest) {
	routeBy := req.Release
	if routeBy == "" {
		routeBy = distinctReleases(req)[0]
	}
	order, err := g.orderForRelease(routeBy)
	if err != nil {
		writeClientError(w, err)
		return
	}
	var results []client.NodeResult
	err = g.forward(order, func(c *client.Client, u string) error {
		out, err := c.BatchQuery(r.Context(), req.Release, req.Queries)
		if err != nil {
			return err
		}
		results = out
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, batchQueryResponse{Release: req.Release, Results: results})
}

// crossBatchQuery evaluates a multi-release batch at the gateway:
// every distinct release downloads exactly once, in parallel, from its
// own ring owners; the scan-sharing planner then answers all queries
// against the shared artifacts. A release that no backend can serve
// fails only the queries reading it.
func (g *Gateway) crossBatchQuery(w http.ResponseWriter, r *http.Request, req batchQueryRequest, distinct []string) {
	rels := make(map[string]hcoc.SparseHistograms, len(distinct))
	errs := make(map[string]error, len(distinct))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range distinct {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			order, err := g.orderForRelease(id)
			if err == nil {
				err = g.forward(order, func(c *client.Client, u string) error {
					rel, _, err := c.DownloadRelease(r.Context(), id)
					if err != nil {
						return err
					}
					mu.Lock()
					rels[id] = rel
					mu.Unlock()
					return nil
				})
			}
			if err != nil {
				mu.Lock()
				errs[id] = err
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	// A dead cluster is a whole-batch condition, not a per-query one.
	if len(rels) == 0 {
		for _, err := range errs {
			if errors.Is(err, cluster.ErrNoBackends) {
				writeClientError(w, err)
				return
			}
		}
	}
	results := plan.New(planQueries(req)).Execute(plan.SourceFunc(func(key string) (hcoc.SparseHistograms, error) {
		if err := errs[key]; err != nil {
			return nil, err
		}
		rel, ok := rels[key]
		if !ok {
			return nil, fmt.Errorf("release not cached")
		}
		return rel, nil
	}))
	resp := batchQueryResponse{Release: req.Release, Results: make([]client.NodeResult, len(results))}
	for i, res := range results {
		resp.Results[i] = toNodeResult(req.Queries[i], res)
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// isLegacyBatch reports whether every entry is a plain node query, the
// pre-cross-release body shape with its whole-batch missing-release 400.
func isLegacyBatch(req batchQueryRequest) bool {
	for _, q := range req.Queries {
		if q.Op != "" || len(q.Releases) > 0 {
			return false
		}
	}
	return true
}

// distinctReleases lists the distinct release ids the batch reads, in
// first-use order, counting the default release for entries naming
// none.
func distinctReleases(req batchQueryRequest) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, q := range req.Queries {
		if len(q.Releases) == 0 {
			add(req.Release)
			continue
		}
		for _, id := range q.Releases {
			add(id)
		}
	}
	return out
}

// planQueries lowers the wire entries into the planner IR, keyed by the
// wire release ids (the gateway's Source downloads by wire id). Unknown
// op names stay put and fail per query in the planner.
func planQueries(req batchQueryRequest) []plan.Query {
	qs := make([]plan.Query, len(req.Queries))
	for i, q := range req.Queries {
		op, err := plan.ParseOp(q.Op)
		if err != nil {
			op = plan.Op(q.Op)
		}
		keys := q.Releases
		if len(keys) == 0 && req.Release != "" {
			keys = []string{req.Release}
		}
		qs[i] = plan.Query{Op: op, Releases: keys, Node: q.Node, Params: query.Params{
			Quantiles:  q.Quantiles,
			KthLargest: q.KthLargest,
			TopCode:    q.TopCode,
		}}
	}
	return qs
}

// toNodeResult renders one planner result in the SDK's wire shape,
// echoing the entry as sent.
func toNodeResult(q client.NodeQuery, res plan.Result) client.NodeResult {
	out := client.NodeResult{
		NodeReport: client.NodeReport{Node: q.Node},
		Op:         q.Op,
		Releases:   q.Releases,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	switch {
	case res.Report != nil:
		out.NodeReport = toNodeReport(q, *res.Report)
	case res.Series != nil:
		out.Series = make([]client.SeriesPoint, len(res.Series))
		for i, pt := range res.Series {
			out.Series[i] = client.SeriesPoint{Release: pt.Release, NodeReport: toNodeReport(q, pt.Report)}
		}
	case res.Left != nil && res.Right != nil:
		left := toNodeReport(q, *res.Left)
		right := toNodeReport(q, *res.Right)
		out.Left, out.Right = &left, &right
	}
	out.EMD = res.EMD
	out.GroupsDelta = res.GroupsDelta
	out.PeopleDelta = res.PeopleDelta
	return out
}

// toNodeReport converts a query-layer report to the SDK shape,
// re-pairing the rank statistics with the parameters that requested
// them.
func toNodeReport(q client.NodeQuery, rep query.Report) client.NodeReport {
	out := client.NodeReport{
		Node:     q.Node,
		Groups:   rep.Groups,
		People:   rep.People,
		Mean:     rep.Mean,
		Median:   rep.Median,
		Gini:     rep.Gini,
		TopCoded: rep.TopCoded,
	}
	for i, size := range rep.Quantiles {
		out.Quantiles = append(out.Quantiles, client.QuantileValue{Q: q.Quantiles[i], Size: size})
	}
	for i, size := range rep.KthLargest {
		out.KthLargest = append(out.KthLargest, client.OrderStat{K: q.KthLargest[i], Size: size})
	}
	return out
}

// handleBudget reads the budget position from the hierarchy's primary
// (the authoritative spender), failing over in replica order.
func (g *Gateway) handleBudget(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	order := g.routeHierarchy(hierarchyFP(id))
	var budget client.Budget
	err := g.forward(order, func(c *client.Client, u string) error {
		b, err := c.Budget(r.Context(), id)
		if err != nil {
			return err
		}
		budget = b
		return nil
	})
	if err != nil {
		writeClientError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, budget)
}

// clusterResponse is the JSON shape of GET /v1/cluster.
type clusterResponse struct {
	Replication  int `json:"replication"`
	VirtualNodes int `json:"virtual_nodes"`
	Live         int `json:"live"`
	// SharedStore reports whether the fleet mounts one shared object
	// store (gateway replication and anti-entropy are then skipped).
	SharedStore bool          `json:"shared_store"`
	Failovers   uint64        `json:"failovers"`
	Joins       uint64        `json:"joins"`
	Leaves      uint64        `json:"leaves"`
	Repair      repairStatus  `json:"repair"`
	Backends    []backendInfo `json:"backends"`
	// Tenants is the per-hierarchy release traffic seen by this gateway,
	// sorted by tenant id — the fleet-wide view of who is sending
	// compute and who is being throttled by backend QoS.
	Tenants []tenantInfo `json:"tenants,omitempty"`
	Route   []string     `json:"route,omitempty"`
}

// tenantInfo is one tenant's release traffic in GET /v1/cluster.
type tenantInfo struct {
	Tenant    string `json:"tenant"`
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Throttled uint64 `json:"throttled"`
}

type backendInfo struct {
	URL                 string  `json:"url"`
	Healthy             bool    `json:"healthy"`
	Instance            string  `json:"instance,omitempty"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	Ejections           uint64  `json:"ejections"`
	LastProbe           string  `json:"last_probe,omitempty"`
	LastError           string  `json:"last_error,omitempty"`
	Requests            uint64  `json:"requests"`
	Errors              uint64  `json:"errors"`
	MeanLatencyMS       float64 `json:"mean_latency_ms"`
	// ReplicaDeficit is how many releases this backend owns on the ring
	// but did not hold at the last anti-entropy sweep — the per-node
	// under-replication an operator watches converge to zero.
	ReplicaDeficit int `json:"replica_deficit"`
}

// handleCluster reports the topology: ring parameters, every backend's
// health, traffic and replica deficit, repair progress, and — with
// ?key=h-<fp> — that key's current failover route, primary first.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	states := g.cluster.States()
	resp := clusterResponse{
		Replication:  g.cluster.Replication(),
		VirtualNodes: g.cluster.VirtualNodes(),
		Live:         len(g.cluster.Live()),
		SharedStore:  g.sharedStore,
		Repair:       g.repair.status(),
		Backends:     make([]backendInfo, len(states)),
	}
	deficits := g.repair.deficits()
	g.mu.Lock()
	resp.Failovers = g.failovers
	resp.Joins, resp.Leaves = g.joins, g.leaves
	for i, st := range states {
		info := backendInfo{
			URL:                 st.URL,
			Healthy:             st.Healthy,
			Instance:            st.Instance,
			ConsecutiveFailures: st.ConsecutiveFailures,
			Ejections:           st.Ejections,
			LastError:           st.LastError,
			ReplicaDeficit:      deficits[st.URL],
		}
		if !st.LastProbe.IsZero() {
			info.LastProbe = st.LastProbe.UTC().Format(time.RFC3339Nano)
		}
		if bs := g.stats[st.URL]; bs != nil {
			info.Requests = bs.requests
			info.Errors = bs.errors
			if bs.requests > 0 {
				info.MeanLatencyMS = float64(bs.latency.Microseconds()) / 1000 / float64(bs.requests)
			}
		}
		resp.Backends[i] = info
	}
	for fp, tt := range g.tenants {
		resp.Tenants = append(resp.Tenants, tenantInfo{
			Tenant:    "h-" + fp,
			Requests:  tt.requests,
			Errors:    tt.errors,
			Throttled: tt.throttled,
		})
	}
	g.mu.Unlock()
	sort.Slice(resp.Tenants, func(i, j int) bool { return resp.Tenants[i].Tenant < resp.Tenants[j].Tenant })
	if key := r.URL.Query().Get("key"); key != "" {
		if route, err := g.cluster.Route(hierarchyFP(key)); err == nil {
			resp.Route = route
		}
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// nodeRequest is the JSON body of POST /v1/cluster/nodes.
type nodeRequest struct {
	URL string `json:"url"`
}

// nodeResponse answers both membership operations.
type nodeResponse struct {
	URL      string `json:"url"`
	Changed  bool   `json:"changed"`
	Backends int    `json:"backends"`
}

// handleAddNode joins a backend to the ring at runtime
// (POST /v1/cluster/nodes {"url": "http://host:port"}). The join is
// answered immediately; an anti-entropy sweep is kicked off in the
// background so the new node converges to its owned set without
// waiting for the next interval.
func (g *Gateway) handleAddNode(w http.ResponseWriter, r *http.Request) {
	var req nodeRequest
	if !serve.DecodeJSON(w, r, &req) {
		return
	}
	u := strings.TrimSuffix(strings.TrimSpace(req.URL), "/")
	if u == "" {
		serve.WriteError(w, http.StatusBadRequest, "missing url")
		return
	}
	if !strings.Contains(u, "://") {
		serve.WriteError(w, http.StatusBadRequest, "backend %q needs a scheme (http://host:port)", u)
		return
	}
	joined, err := g.AddBackend(u)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if joined {
		go g.cluster.ProbeNow(context.Background())
		g.repair.kick()
	}
	serve.WriteJSON(w, http.StatusOK, nodeResponse{URL: u, Changed: joined, Backends: len(g.cluster.Backends())})
}

// handleRemoveNode drains a backend from the ring at runtime
// (DELETE /v1/cluster/nodes?url=http://host:port). A sweep is kicked
// off so the releases the departed node held get re-replicated onto
// their new owners while it is still likely reachable elsewhere.
func (g *Gateway) handleRemoveNode(w http.ResponseWriter, r *http.Request) {
	u := strings.TrimSuffix(strings.TrimSpace(r.URL.Query().Get("url")), "/")
	if u == "" {
		serve.WriteError(w, http.StatusBadRequest, "missing url query parameter")
		return
	}
	if err := g.RemoveBackend(u); err != nil {
		switch {
		case errors.Is(err, cluster.ErrUnknownBackend):
			serve.WriteError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, cluster.ErrLastBackend):
			serve.WriteError(w, http.StatusConflict, "%v", err)
		default:
			serve.WriteError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	g.repair.kick()
	serve.WriteJSON(w, http.StatusOK, nodeResponse{URL: u, Changed: true, Backends: len(g.cluster.Backends())})
}

// handleRepair runs one anti-entropy sweep synchronously and reports
// it — the operator's "converge now" button, and what CI uses to make
// convergence deterministic instead of sleeping past an interval.
func (g *Gateway) handleRepair(w http.ResponseWriter, r *http.Request) {
	report := g.repair.sweep(r.Context())
	serve.WriteJSON(w, http.StatusOK, report)
}

// handleHealthz answers 200 while at least one backend is live — the
// gateway itself holds no data, so "up with zero backends" would be a
// lie to load balancers.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := len(g.cluster.Live())
	if live == 0 {
		serve.WriteError(w, http.StatusServiceUnavailable, "no live backends")
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"live":     live,
		"backends": len(g.cluster.Backends()),
	})
}

// handleMetrics exposes the gateway's routing counters in the
// Prometheus text format, per-backend series labeled by URL.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	states := g.cluster.States()
	repair := g.repair.status()
	deficits := g.repair.deficits()
	g.mu.Lock()
	defer g.mu.Unlock()

	fmt.Fprintf(w, "# HELP hcoc_gateway_backends Configured backends.\nhcoc_gateway_backends %d\n", len(states))
	live := 0
	for _, st := range states {
		if st.Healthy {
			live++
		}
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_live_backends Backends currently healthy.\nhcoc_gateway_live_backends %d\n", live)
	fmt.Fprintf(w, "# HELP hcoc_gateway_failovers_total Requests retried past their first-choice backend.\nhcoc_gateway_failovers_total %d\n", g.failovers)
	fmt.Fprintf(w, "# HELP hcoc_gateway_fanout_uploads_total Hierarchy uploads fanned out to the ring owners.\nhcoc_gateway_fanout_uploads_total %d\n", g.fanouts)
	fmt.Fprintf(w, "# HELP hcoc_gateway_replications_total Artifacts copied to replicas.\nhcoc_gateway_replications_total %d\n", g.replications)
	fmt.Fprintf(w, "# HELP hcoc_gateway_replication_errors_total Failed artifact copies (best effort, retried on the next fresh computation).\nhcoc_gateway_replication_errors_total %d\n", g.replFailures)
	fmt.Fprintf(w, "# HELP hcoc_gateway_replications_skipped_total Artifact copies skipped because the fleet mounts a shared store.\nhcoc_gateway_replications_skipped_total %d\n", g.replSkipped)
	shared := 0
	if g.sharedStore {
		shared = 1
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_shared_store Whether the fleet mounts one shared object store (1 = yes).\nhcoc_gateway_shared_store %d\n", shared)

	fmt.Fprintf(w, "# HELP hcoc_gateway_backend_requests_total Requests forwarded per backend.\n")
	for _, st := range states {
		if bs := g.stats[st.URL]; bs != nil {
			fmt.Fprintf(w, "hcoc_gateway_backend_requests_total{backend=%q} %d\n", st.URL, bs.requests)
		}
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_backend_errors_total Failed forwards per backend.\n")
	for _, st := range states {
		if bs := g.stats[st.URL]; bs != nil {
			fmt.Fprintf(w, "hcoc_gateway_backend_errors_total{backend=%q} %d\n", st.URL, bs.errors)
		}
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_backend_latency_seconds_total Cumulative forward latency per backend.\n")
	for _, st := range states {
		if bs := g.stats[st.URL]; bs != nil {
			fmt.Fprintf(w, "hcoc_gateway_backend_latency_seconds_total{backend=%q} %g\n", st.URL, bs.latency.Seconds())
		}
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_backend_healthy Backend health (1 = live, 0 = ejected).\n")
	for _, st := range states {
		v := 0
		if st.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "hcoc_gateway_backend_healthy{backend=%q} %d\n", st.URL, v)
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_backend_ejections_total Healthy-to-ejected transitions per backend.\n")
	for _, st := range states {
		fmt.Fprintf(w, "hcoc_gateway_backend_ejections_total{backend=%q} %d\n", st.URL, st.Ejections)
	}

	tenantFPs := make([]string, 0, len(g.tenants))
	for fp := range g.tenants {
		tenantFPs = append(tenantFPs, fp)
	}
	sort.Strings(tenantFPs)
	fmt.Fprintf(w, "# HELP hcoc_gateway_tenant_requests_total Release requests per tenant (hierarchy).\n")
	for _, fp := range tenantFPs {
		fmt.Fprintf(w, "hcoc_gateway_tenant_requests_total{tenant=%q} %d\n", "h-"+fp, g.tenants[fp].requests)
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_tenant_errors_total Failed release requests per tenant.\n")
	for _, fp := range tenantFPs {
		fmt.Fprintf(w, "hcoc_gateway_tenant_errors_total{tenant=%q} %d\n", "h-"+fp, g.tenants[fp].errors)
	}
	fmt.Fprintf(w, "# HELP hcoc_gateway_tenant_throttled_total Release requests answered with a compute-queue 429 per tenant.\n")
	for _, fp := range tenantFPs {
		fmt.Fprintf(w, "hcoc_gateway_tenant_throttled_total{tenant=%q} %d\n", "h-"+fp, g.tenants[fp].throttled)
	}

	fmt.Fprintf(w, "# HELP hcoc_gateway_node_joins_total Backends added at runtime.\nhcoc_gateway_node_joins_total %d\n", g.joins)
	fmt.Fprintf(w, "# HELP hcoc_gateway_node_leaves_total Backends removed at runtime.\nhcoc_gateway_node_leaves_total %d\n", g.leaves)
	fmt.Fprintf(w, "# HELP hcoc_repair_sweeps_total Completed anti-entropy sweeps.\nhcoc_repair_sweeps_total %d\n", repair.Sweeps)
	fmt.Fprintf(w, "# HELP hcoc_repair_releases_scanned_total Durable releases examined by sweeps.\nhcoc_repair_releases_scanned_total %d\n", repair.ReleasesScanned)
	fmt.Fprintf(w, "# HELP hcoc_repair_releases_repaired_total Replica slots filled by sweeps.\nhcoc_repair_releases_repaired_total %d\n", repair.ReleasesRepaired)
	fmt.Fprintf(w, "# HELP hcoc_repair_releases_failed_total Replica copies that failed (retried next sweep).\nhcoc_repair_releases_failed_total %d\n", repair.ReleasesFailed)
	fmt.Fprintf(w, "# HELP hcoc_repair_last_sweep_duration_seconds Wall time of the most recent sweep.\nhcoc_repair_last_sweep_duration_seconds %g\n", repair.LastSweepDurationMS/1000)
	fmt.Fprintf(w, "# HELP hcoc_repair_under_replicated Owned-but-missing replica slots per backend after the last sweep (0 = converged).\n")
	for _, st := range states {
		fmt.Fprintf(w, "hcoc_repair_under_replicated{backend=%q} %d\n", st.URL, deficits[st.URL])
	}
}
