package consistency

import (
	"fmt"
	"hash/fnv"
	"sync"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/noise"
)

// nodeSeed derives a per-node noise seed from the release seed and the
// node's path, so that per-node estimation is order-independent (and
// therefore parallelizable) while remaining fully reproducible.
func nodeSeed(seed int64, path string) int64 {
	h := fnv.New64a()
	// FNV over the path, mixed with the release seed.
	_, _ = h.Write([]byte(path))
	return seed ^ int64(h.Sum64())
}

// estimateAll runs the Section 4 estimator on every node of the tree
// (lines 1-7 of Algorithm 1), fanning out across opts.Workers
// goroutines.
func estimateAll(tree *hierarchy.Tree, opts Options, epsLevel float64) (map[string]*nodeState, error) {
	type job struct {
		node   *hierarchy.Node
		method estimator.Method
	}
	var jobs []job
	for level, nodes := range tree.ByLevel {
		m := opts.methodFor(level)
		for _, n := range nodes {
			jobs = append(jobs, job{node: n, method: m})
		}
	}

	workers := opts.workerCount(len(jobs))

	states := make([]*nodeState, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				gen := noise.New(nodeSeed(opts.Seed, j.node.Path))
				res, err := estimator.Estimate(j.method, j.node.Hist,
					estimator.Params{Epsilon: epsLevel, K: opts.K}, gen)
				if err != nil {
					errs[i] = fmt.Errorf("consistency: node %q: %w", j.node.Path, err)
					continue
				}
				states[i] = &nodeState{hg: res.Hist.GroupSizes(), vg: res.GroupVar}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	out := make(map[string]*nodeState, len(jobs))
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[j.node.Path] = states[i]
	}
	return out, nil
}
