package consistency

import (
	"fmt"
	"hash/fnv"
	"sync"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/noise"
)

// nodeSeed derives a per-node noise seed from the release seed and the
// node's path, so that per-node estimation is order-independent (and
// therefore parallelizable) while remaining fully reproducible.
func nodeSeed(seed int64, path string) int64 {
	h := fnv.New64a()
	// FNV over the path, mixed with the release seed.
	_, _ = h.Write([]byte(path))
	return seed ^ int64(h.Sum64())
}

// estimateJob is one node's estimation work item.
type estimateJob struct {
	node   *hierarchy.Node
	method estimator.Method
}

// estimateNodes runs one estimation function over every node of the
// tree (lines 1-7 of Algorithm 1), fanning out across opts.Workers
// goroutines. Each node's noise generator is seeded from (Seed, path),
// so the result is independent of scheduling.
func estimateNodes[T any](tree *hierarchy.Tree, opts Options, one func(estimateJob, *noise.Gen) (T, error)) (map[string]T, error) {
	var jobs []estimateJob
	for level, nodes := range tree.ByLevel {
		m := opts.methodFor(level)
		for _, n := range nodes {
			jobs = append(jobs, estimateJob{node: n, method: m})
		}
	}

	workers := opts.workerCount(len(jobs))

	states := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				gen := noise.New(nodeSeed(opts.Seed, j.node.Path))
				res, err := one(j, gen)
				if err != nil {
					errs[i] = fmt.Errorf("consistency: node %q: %w", j.node.Path, err)
					continue
				}
				states[i] = res
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	out := make(map[string]T, len(jobs))
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[j.node.Path] = states[i]
	}
	return out, nil
}

// estimateAll produces the dense per-group nodeState for every node —
// the reference pipeline's estimation pass.
func estimateAll(tree *hierarchy.Tree, opts Options, epsLevel float64) (map[string]*nodeState, error) {
	return estimateNodes(tree, opts, func(j estimateJob, gen *noise.Gen) (*nodeState, error) {
		res, err := estimator.Estimate(j.method, j.node.Hist,
			estimator.Params{Epsilon: epsLevel, K: opts.K}, gen)
		if err != nil {
			return nil, err
		}
		return &nodeState{hg: res.Hist.GroupSizes(), vg: res.GroupVar}, nil
	})
}

// estimateAllRuns produces the run-length runState for every node — the
// sparse pipeline's estimation pass, identical noise draws, O(runs)
// state per node.
func estimateAllRuns(tree *hierarchy.Tree, opts Options, epsLevel float64) (map[string]*runState, error) {
	return estimateNodes(tree, opts, func(j estimateJob, gen *noise.Gen) (*runState, error) {
		runs, err := estimator.EstimateRuns(j.method, j.node.Hist,
			estimator.Params{Epsilon: epsLevel, K: opts.K}, gen)
		if err != nil {
			return nil, err
		}
		return &runState{hg: runs}, nil
	})
}
