package consistency

import (
	"math/rand"
	"testing"
)

func TestTopDownIndependentOfWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tree := randomTree(r, 3)
	var baseline Release
	for _, workers := range []int{1, 2, 8} {
		opts := defaultOpts(5)
		opts.Workers = workers
		rel, err := TopDown(tree, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = rel
			continue
		}
		for path, h := range baseline {
			if !h.Equal(rel[path]) {
				t.Fatalf("workers=%d: node %q differs from single-worker result", workers, path)
			}
		}
	}
}

func TestNodeSeedDistinctness(t *testing.T) {
	// Different paths must yield different noise streams; same path and
	// seed must be stable.
	a := nodeSeed(1, "US/CA")
	b := nodeSeed(1, "US/WA")
	c := nodeSeed(1, "US/CA")
	if a == b {
		t.Error("different paths produced identical seeds")
	}
	if a != c {
		t.Error("same path produced different seeds")
	}
	if nodeSeed(2, "US/CA") == a {
		t.Error("different release seeds produced identical node seeds")
	}
}
