package consistency

import (
	"fmt"
	"runtime"
	"testing"

	"hcoc/internal/dataset"
	"hcoc/internal/hierarchy"
)

// benchTopDownTree builds a 3-level housing hierarchy over all 52
// states, so the middle level has 52 independent parents for the
// matching loop to fan out over.
func benchTopDownTree(b *testing.B) *hierarchy.Tree {
	b.Helper()
	tree, err := dataset.Tree(dataset.Housing, dataset.Config{Seed: 1, Scale: 0.05, Levels: 3})
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func benchOpts(workers int) Options {
	return Options{Epsilon: 1, K: 5000, Seed: 1, Workers: workers}
}

// BenchmarkTopDownMatch isolates the per-parent matching/merging loop
// (lines 8-12 of Algorithm 1) at 1 worker and at GOMAXPROCS, after a
// shared estimation pass, for both the dense per-group walk and the
// run-length sweep. The parallel variants must be no slower at 1
// worker (they run inline) and faster at GOMAXPROCS.
func BenchmarkTopDownMatch(b *testing.B) {
	tree := benchTopDownTree(b)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("dense/workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(workers)
			states, err := estimateAll(tree, opts, opts.Epsilon/float64(tree.Depth()))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := matchLevels(tree, states, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse/workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(workers)
			states, err := estimateAllRuns(tree, opts, opts.Epsilon/float64(tree.Depth()))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := matchLevelsRuns(tree, states, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopDownRelease measures the full Algorithm 1 release
// (estimation + matching + back-substitution) at both worker counts,
// dense reference versus run-length production pipeline.
func BenchmarkTopDownRelease(b *testing.B) {
	tree := benchTopDownTree(b)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("dense/workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TopDownDense(tree, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse/workers=%d", workers), func(b *testing.B) {
			opts := benchOpts(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TopDownSparse(tree, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTopDownWorkersDeterministic verifies that the released histograms
// are identical at any parallelism, as Options.Workers documents.
func TestTopDownWorkersDeterministic(t *testing.T) {
	tree, err := dataset.Tree(dataset.Housing, dataset.Config{Seed: 3, Scale: 0.01, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	var base Release
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		rel, err := TopDown(tree, Options{Epsilon: 1, K: 2000, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := rel.Check(tree); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = rel
			continue
		}
		for path, h := range base {
			if !h.Equal(rel[path]) {
				t.Fatalf("workers=%d: node %q differs from workers=1 release", workers, path)
			}
		}
	}
}
