package consistency

import (
	"fmt"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/histogram"
	"hcoc/internal/noise"
)

// RecomputeState carries the per-node intermediate results of one
// top-down sparse release — the original estimate runs and the
// matched/merged updated runs — so a later release of a slightly
// different tree can reuse the untouched parts bit-for-bit. The final
// artifact alone cannot serve this role: back-substitution discards
// rank order and variances, both of which matching consumes.
//
// State is immutable once returned; incremental recomputes alias the
// prior state's run slices rather than copying them.
type RecomputeState struct {
	depth int
	nodes map[string]*runState
}

// CostBytes estimates the resident memory of the state, for byte-
// budgeted caches: 24 bytes per estimate run (size, count, variance),
// 24 per updated run, plus per-node map and key overhead.
func (s *RecomputeState) CostBytes() int64 {
	if s == nil {
		return 0
	}
	const perNode = 120
	var b int64
	for path, st := range s.nodes {
		b += perNode + int64(len(path)) + int64(len(st.hg)+len(st.upd))*24
	}
	return b
}

// Nodes reports how many nodes the state covers.
func (s *RecomputeState) Nodes() int {
	if s == nil {
		return 0
	}
	return len(s.nodes)
}

// RecomputeStats counts how much of the pipeline an incremental release
// actually re-ran. NodesEstimated < NodesTotal is the proof that a
// delta did not pay for a full rebuild: per-node DP estimation is the
// expensive stage, and it is skipped exactly for the nodes whose data
// the delta left untouched.
type RecomputeStats struct {
	// NodesEstimated counts nodes whose DP estimate was recomputed;
	// NodesTotal is every node in the tree.
	NodesEstimated, NodesTotal int
	// ParentsMatched counts parents whose top-down matching re-ran;
	// ParentsTotal is every internal node.
	ParentsMatched, ParentsTotal int
}

// Full reports whether the release degenerated to a from-scratch
// recompute (no prior state, depth change, or a delta touching
// everything).
func (st RecomputeStats) Full() bool {
	return st.NodesEstimated >= st.NodesTotal
}

// updRunsEqual reports bitwise equality of two updated-run lists.
// appendUpd compacts adjacent equal runs deterministically, so equal
// inputs always produce the same run boundaries and this comparison
// never sees false mismatches from representation drift.
func updRunsEqual(a, b []updRun) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TopDownSparseFrom is TopDownSparse with reuse: it releases the tree
// under opts, reusing from prev the per-node work whose inputs the
// caller certifies unchanged. changed must contain the path of every
// node whose histogram or child set differs from the tree prev was
// computed for (for a delta touching a set of leaves, that is the
// leaves plus all their ancestors). Nodes absent from changed are
// trusted to be identical; nodes absent from prev are recomputed
// regardless.
//
// The result is bit-identical to TopDownSparse(tree, opts) — the
// differential suite pins this — because every reused quantity is a
// deterministic function of inputs proven unchanged: estimation
// depends only on (seed, path, histogram, level budget, method), and a
// parent's matching only on its own estimate and updated runs and its
// children's estimate runs. Matching re-runs for a parent whenever any
// of those inputs was recomputed or its updated runs differ from
// prev's; otherwise its children's updated runs are copied forward.
//
// A nil prev (or a depth change, which re-splits the per-level budget
// and invalidates every estimate) degrades to a full recompute.
func TopDownSparseFrom(tree *hierarchy.Tree, opts Options, prev *RecomputeState, changed map[string]bool) (SparseRelease, *RecomputeState, RecomputeStats, error) {
	depth := tree.Depth()
	var stats RecomputeStats
	if err := opts.validate(depth); err != nil {
		return nil, nil, stats, err
	}
	epsLevel := opts.Epsilon / float64(depth)
	usable := prev != nil && prev.depth == depth

	// Estimation pass: reuse hg runs for certified-unchanged nodes,
	// re-estimate the rest level by level (the per-level method matters).
	states := make(map[string]*runState)
	estimated := make(map[string]bool)
	for level, nodes := range tree.ByLevel {
		stats.NodesTotal += len(nodes)
		var todo []*hierarchy.Node
		for _, n := range nodes {
			if usable && !changed[n.Path] {
				if ps, ok := prev.nodes[n.Path]; ok {
					states[n.Path] = &runState{hg: ps.hg}
					continue
				}
			}
			states[n.Path] = &runState{}
			estimated[n.Path] = true
			todo = append(todo, n)
		}
		if len(todo) == 0 {
			continue
		}
		m := opts.methodFor(level)
		err := forEachNode(todo, opts.workerCount(len(todo)), func(n *hierarchy.Node) error {
			runs, err := estimator.EstimateRuns(m, n.Hist,
				estimator.Params{Epsilon: epsLevel, K: opts.K},
				noise.New(nodeSeed(opts.Seed, n.Path)))
			if err != nil {
				return fmt.Errorf("consistency: node %q: %w", n.Path, err)
			}
			states[n.Path].hg = runs
			return nil
		})
		if err != nil {
			return nil, nil, stats, err
		}
	}
	stats.NodesEstimated = len(estimated)

	// Matching pass. updChanged tracks, per node, whether its updated
	// runs differ from prev's — the induction variable that decides
	// whether a parent further down must re-match.
	updChanged := make(map[string]bool)
	rootPath := tree.Root.Path
	rs := states[rootPath]
	rs.upd = make([]updRun, 0, len(rs.hg))
	for _, r := range rs.hg {
		rs.upd = append(rs.upd, updRun{val: r.Size, vr: r.Var, count: r.Count})
	}
	if usable {
		ps, ok := prev.nodes[rootPath]
		updChanged[rootPath] = !ok || !updRunsEqual(rs.upd, ps.upd)
	} else {
		updChanged[rootPath] = true
	}

	for level := 0; level < depth-1; level++ {
		for _, parent := range tree.ByLevel[level] {
			if len(parent.Children) == 0 {
				continue
			}
			stats.ParentsTotal++
			rerun := !usable || estimated[parent.Path] || updChanged[parent.Path]
			if !rerun {
				for _, c := range parent.Children {
					if estimated[c.Path] {
						rerun = true
						break
					}
					if _, ok := prev.nodes[c.Path]; !ok {
						rerun = true
						break
					}
				}
			}
			if rerun {
				stats.ParentsMatched++
				if err := matchParentRuns(states, parent, opts.Merge); err != nil {
					return nil, nil, stats, err
				}
				for _, c := range parent.Children {
					if !usable {
						updChanged[c.Path] = true
						continue
					}
					ps, ok := prev.nodes[c.Path]
					updChanged[c.Path] = !ok || !updRunsEqual(states[c.Path].upd, ps.upd)
				}
			} else {
				// Every input to this parent's matching is bit-identical
				// to prev's; its outputs are too — copy them forward.
				for _, c := range parent.Children {
					states[c.Path].upd = prev.nodes[c.Path].upd
					updChanged[c.Path] = false
				}
			}
		}
	}

	// Leaves and back-substitution, exactly as TopDownSparse.
	out := make(SparseRelease, len(states))
	for _, leaf := range tree.Leaves() {
		out[leaf.Path] = updSparse(states[leaf.Path].upd)
	}
	for level := depth - 2; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			sum := histogram.Sparse{}
			for _, c := range n.Children {
				sum = sum.Add(out[c.Path])
			}
			out[n.Path] = sum
		}
	}
	return out, &RecomputeState{depth: depth, nodes: states}, stats, nil
}
