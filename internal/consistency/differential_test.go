package consistency

import (
	"fmt"
	"math/rand"
	"testing"

	"hcoc/internal/dataset"
	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
)

// randomTree builds a randomized hierarchy: random depth and branching,
// skewed group sizes with heavy ties, empty leaves, and zero-size
// groups — the shapes that stress run coalescing, the proportional
// split of Algorithm 2, and the empty-node edge cases.
func randomDiffTree(t *testing.T, r *rand.Rand) *hierarchy.Tree {
	t.Helper()
	depth := 1 + r.Intn(3) // levels below the root
	var groups []hierarchy.Group
	var build func(path []string, level int)
	build = func(path []string, level int) {
		if level == depth {
			// 0..30 groups in this leaf; sizes skewed toward small with
			// occasional large outliers, including size 0.
			for n := r.Intn(31); n > 0; n-- {
				var size int64
				switch r.Intn(10) {
				case 0:
					size = 0
				case 1:
					size = int64(r.Intn(5000)) // outlier
				default:
					size = int64(r.Intn(6))
				}
				leafPath := make([]string, len(path))
				copy(leafPath, path)
				groups = append(groups, hierarchy.Group{Path: leafPath, Size: size})
			}
			return
		}
		for c := 1 + r.Intn(4); c > 0; c-- {
			build(append(path, fmt.Sprintf("n%d-%d", level, c)), level+1)
		}
	}
	build(nil, 0)
	if len(groups) == 0 {
		groups = append(groups, hierarchy.Group{Path: firstLeafPath(depth), Size: 1})
	}
	tree, err := hierarchy.BuildTree("root", groups)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func firstLeafPath(depth int) []string {
	path := make([]string, depth)
	for i := range path {
		path[i] = fmt.Sprintf("n%d-1", i)
	}
	return path
}

func assertSameRelease(t *testing.T, label string, dense Release, sparse SparseRelease) {
	t.Helper()
	if len(dense) != len(sparse) {
		t.Fatalf("%s: dense released %d nodes, sparse %d", label, len(dense), len(sparse))
	}
	for path, h := range dense {
		s, ok := sparse[path]
		if !ok {
			t.Fatalf("%s: sparse release missing node %q", label, path)
		}
		if !h.Equal(s.Hist()) {
			t.Fatalf("%s: node %q differs\ndense  = %v\nsparse = %v", label, path, h, s.Hist())
		}
		// The sparse form must also be canonical — exactly what the
		// dense histogram converts to.
		if !s.Equal(h.Sparse()) {
			t.Fatalf("%s: node %q sparse form is not canonical: %v", label, path, s)
		}
	}
}

// TestTopDownSparseDifferential is the tentpole guarantee: over
// randomized hierarchies, methods, and merge strategies, the run-length
// pipeline releases bit-for-bit the same histograms as the dense
// per-group reference.
func TestTopDownSparseDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	methods := [][]estimator.Method{
		nil,
		{estimator.MethodHc},
		{estimator.MethodHg},
		{estimator.MethodNaive},
		{estimator.MethodHcL2},
	}
	for trial := 0; trial < 25; trial++ {
		tree := randomDiffTree(t, r)
		opts := Options{
			Epsilon: 0.1 + r.Float64(),
			K:       100 + r.Intn(2000),
			Methods: methods[trial%len(methods)],
			Merge:   MergeStrategy(trial % 2),
			Seed:    int64(trial),
		}
		label := fmt.Sprintf("trial %d (depth %d, methods %v, merge %v)",
			trial, tree.Depth(), opts.Methods, opts.Merge)

		dense, err := TopDownDense(tree, opts)
		if err != nil {
			t.Fatalf("%s: dense: %v", label, err)
		}
		sparse, err := TopDownSparse(tree, opts)
		if err != nil {
			t.Fatalf("%s: sparse: %v", label, err)
		}
		assertSameRelease(t, label, dense, sparse)
		if err := sparse.Check(tree); err != nil {
			t.Fatalf("%s: sparse Check: %v", label, err)
		}
		if err := dense.Check(tree); err != nil {
			t.Fatalf("%s: dense Check: %v", label, err)
		}
	}
}

// TestTopDownSparseDifferentialRealistic repeats the differential check
// on the bundled census- and taxi-shaped workloads (mixed per-level
// methods included).
func TestTopDownSparseDifferentialRealistic(t *testing.T) {
	cases := []struct {
		kind dataset.Kind
		cfg  dataset.Config
	}{
		{dataset.Housing, dataset.Config{Seed: 1, Scale: 0.01, Levels: 3}},
		{dataset.RaceHawaiian, dataset.Config{Seed: 2, Scale: 0.02}},
		{dataset.RaceWhite, dataset.Config{Seed: 3, Scale: 0.01}},
		{dataset.Taxi, dataset.Config{Seed: 4, Scale: 0.05, Levels: 3}},
	}
	for _, c := range cases {
		tree, err := dataset.Tree(c.kind, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Alternate Hc and Hg per level to exercise mixed-method trees.
		ms := make([]estimator.Method, tree.Depth())
		for i := range ms {
			ms[i] = []estimator.Method{estimator.MethodHc, estimator.MethodHg}[i%2]
		}
		opts := Options{Epsilon: 1, K: 2000, Seed: 7, Methods: ms}
		dense, err := TopDownDense(tree, opts)
		if err != nil {
			t.Fatalf("%v: dense: %v", c.kind, err)
		}
		sparse, err := TopDownSparse(tree, opts)
		if err != nil {
			t.Fatalf("%v: sparse: %v", c.kind, err)
		}
		assertSameRelease(t, c.kind.String(), dense, sparse)
	}
}

// TestBottomUpSparseDifferential covers the bottom-up baseline the same
// way.
func TestBottomUpSparseDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		tree := randomDiffTree(t, r)
		opts := Options{Epsilon: 1, K: 500, Seed: int64(trial)}
		dense, err := BottomUpDense(tree, opts)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		sparse, err := BottomUpSparse(tree, opts)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		assertSameRelease(t, fmt.Sprintf("trial %d", trial), dense, sparse)
	}
}

// TestSparseReleaseAccounting sanity-checks the cache-cost accessors.
func TestSparseReleaseAccounting(t *testing.T) {
	rel := SparseRelease{
		"a":   {{Size: 1, Count: 2}, {Size: 9, Count: 1}},
		"a/b": {{Size: 0, Count: 4}},
	}
	if got := rel.TotalRuns(); got != 3 {
		t.Fatalf("TotalRuns = %d, want 3", got)
	}
	if got := rel.CostBytes(); got <= 3*16 {
		t.Fatalf("CostBytes = %d, want > raw run bytes", got)
	}
	dense := rel.Dense()
	if len(dense) != 2 || dense["a"].Groups() != 3 {
		t.Fatalf("Dense = %v", dense)
	}
}
