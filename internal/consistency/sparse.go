package consistency

import (
	"fmt"
	"sort"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/histogram"
	"hcoc/internal/matching"
	"hcoc/internal/noise"
)

// SparseRelease maps node paths to released count-of-counts histograms
// in run-length form. It is the memory-frugal shape of a Release: a
// node costs space proportional to its distinct group sizes, not to the
// public bound K, which is what lets the engine cache hold orders of
// magnitude more releases.
type SparseRelease map[string]histogram.Sparse

// Dense expands the release into the dense representation.
func (r SparseRelease) Dense() Release {
	out := make(Release, len(r))
	for path, s := range r {
		out[path] = s.Hist()
	}
	return out
}

// TotalRuns returns the number of runs held across all nodes — the
// quantity cache cost accounting is based on.
func (r SparseRelease) TotalRuns() int64 {
	var n int64
	for _, s := range r {
		n += int64(len(s))
	}
	return n
}

// CostBytes estimates the resident memory of the release: 16 bytes per
// run plus per-node map and key overhead. It is the unit the engine's
// byte-budgeted cache accounts in.
func (r SparseRelease) CostBytes() int64 {
	// Map bucket, string header, slice header and allocator slack,
	// approximated per entry.
	const perNode = 112
	var b int64
	for path, s := range r {
		b += perNode + int64(len(path)) + int64(len(s))*16
	}
	return b
}

// Check verifies the four problem requirements of Section 3 against the
// public structure of the tree, exactly as Release.Check does, but as
// run scans.
func (r SparseRelease) Check(tree *hierarchy.Tree) error {
	var err error
	tree.Walk(func(n *hierarchy.Node) {
		if err != nil {
			return
		}
		s, ok := r[n.Path]
		if !ok {
			err = fmt.Errorf("consistency: no release for node %q", n.Path)
			return
		}
		if e := s.Validate(); e != nil {
			err = fmt.Errorf("consistency: node %q: %w", n.Path, e)
			return
		}
		if s.Groups() != n.G() {
			err = fmt.Errorf("consistency: node %q released %d groups, public count is %d", n.Path, s.Groups(), n.G())
			return
		}
		if !n.IsLeaf() {
			sum := histogram.Sparse{}
			for _, c := range n.Children {
				sum = sum.Add(r[c.Path])
			}
			if !s.Equal(sum) {
				err = fmt.Errorf("consistency: node %q is not the sum of its children", n.Path)
			}
		}
	})
	return err
}

// updRun is one run of a node's updated (merged, rounded) estimate:
// count consecutive groups, in the rank order of the original estimate,
// sharing the updated value val and variance vr. Unlike the original
// estimate, updated values need not be sorted — runs are index-aligned,
// not size-sorted.
type updRun struct {
	val   int64
	vr    float64
	count int64
}

// runState is nodeState in run-length form: the per-node intermediate
// results of Algorithm 1 at O(distinct sizes) instead of O(groups).
type runState struct {
	hg  []estimator.SizeRun // original estimate runs (used for matching)
	upd []updRun            // updated runs, rank-aligned with hg
}

// hgRuns projects the original estimate onto the (size, count) runs the
// matcher consumes.
func hgRuns(rs []estimator.SizeRun) []histogram.Run {
	out := make([]histogram.Run, len(rs))
	for i, r := range rs {
		out[i] = histogram.Run{Size: r.Size, Count: r.Count}
	}
	return out
}

// appendUpd appends a run, merging it into the previous one when value
// and variance agree exactly (pure compaction; lookups by rank see the
// same values either way).
func appendUpd(runs []updRun, r updRun) []updRun {
	if n := len(runs); n > 0 && runs[n-1].val == r.val && runs[n-1].vr == r.vr {
		runs[n-1].count += r.count
		return runs
	}
	return append(runs, r)
}

// updSparse converts an updated-run list into the canonical sparse
// histogram (sorted by size, equal sizes merged) — the run-length
// equivalent of GroupSizes.Hist().
func updSparse(runs []updRun) histogram.Sparse {
	pairs := make(histogram.Sparse, 0, len(runs))
	for _, r := range runs {
		pairs = append(pairs, histogram.Run{Size: r.val, Count: r.count})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Size < pairs[j].Size })
	out := pairs[:0]
	for _, p := range pairs {
		if n := len(out); n > 0 && out[n-1].Size == p.Size {
			out[n-1].Count += p.Count
		} else {
			out = append(out, p)
		}
	}
	return out
}

// TopDownSparse runs Algorithm 1 entirely in run-length form: per-level
// DP estimation (EstimateRuns), top-down matching and merging over runs
// (ComputeRuns), then sparse back-substitution. It releases bit-for-bit
// the same histograms as TopDownDense — the noise draws and every merge
// are identical; only the data layout differs — in time and space
// O(runs) per node for every step after the (necessarily dense) noise
// injection.
func TopDownSparse(tree *hierarchy.Tree, opts Options) (SparseRelease, error) {
	depth := tree.Depth()
	if err := opts.validate(depth); err != nil {
		return nil, err
	}
	epsLevel := opts.Epsilon / float64(depth)

	// Lines 1-7: per-node DP estimates and variances, as runs.
	states, err := estimateAllRuns(tree, opts, epsLevel)
	if err != nil {
		return nil, err
	}

	// Lines 8-12: top-down matching and merging.
	if err := matchLevelsRuns(tree, states, opts); err != nil {
		return nil, err
	}

	// Line 13: leaves' updated runs become their final histograms.
	// Every leaf has upd set: matchLevelsRuns seeds the root (the only
	// leaf of a single-level tree) and matchParentRuns fills every
	// deeper node.
	out := make(SparseRelease, len(states))
	for _, leaf := range tree.Leaves() {
		out[leaf.Path] = updSparse(states[leaf.Path].upd)
	}

	// Lines 14-15: back-substitution.
	for level := depth - 2; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			sum := histogram.Sparse{}
			for _, c := range n.Children {
				sum = sum.Add(out[c.Path])
			}
			out[n.Path] = sum
		}
	}
	return out, nil
}

// matchLevelsRuns is matchLevels over run states: seed the root's
// updated estimate with its own, then walk the levels top-down. The
// per-level fan-out and its determinism argument are unchanged.
func matchLevelsRuns(tree *hierarchy.Tree, states map[string]*runState, opts Options) error {
	rootState := states[tree.Root.Path]
	rootState.upd = make([]updRun, 0, len(rootState.hg))
	for _, r := range rootState.hg {
		rootState.upd = append(rootState.upd, updRun{val: r.Size, vr: r.Var, count: r.Count})
	}

	for level := 0; level < tree.Depth()-1; level++ {
		parents := tree.ByLevel[level]
		err := forEachNode(parents, opts.workerCount(len(parents)), func(parent *hierarchy.Node) error {
			return matchParentRuns(states, parent, opts.Merge)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// matchParentRuns is matchParent over runs: Algorithm 2 as a run sweep,
// then per-segment merging. Each matched segment is intersected with
// the child's estimate runs (constant size and variance) and the
// parent's updated runs (constant value and variance), so one merge
// covers every group in the overlap — the per-parent cost is
// O(segments + runs), not O(groups).
func matchParentRuns(states map[string]*runState, parent *hierarchy.Node, strategy MergeStrategy) error {
	if len(parent.Children) == 0 {
		return nil
	}
	ps := states[parent.Path]
	childHg := make([][]histogram.Run, len(parent.Children))
	for i, c := range parent.Children {
		childHg[i] = hgRuns(states[c.Path].hg)
	}
	segs, err := matching.ComputeRuns(hgRuns(ps.hg), childHg)
	if err != nil {
		return fmt.Errorf("consistency: node %q: %w", parent.Path, err)
	}

	// Rank offsets of the parent's updated runs, for locating a
	// segment's parent range.
	pOffs := make([]int64, len(ps.upd)+1)
	for i, u := range ps.upd {
		pOffs[i+1] = pOffs[i] + u.count
	}

	for i, c := range parent.Children {
		cs := states[c.Path]
		upd := []updRun{}
		cr, co := 0, int64(0) // child run cursor: run index, consumed within run
		pr := 0               // parent upd run; segments' parent ranks only grow
		for _, seg := range segs[i] {
			pIdx := seg.Parent
			for n := seg.N; n > 0; {
				for pOffs[pr+1] <= pIdx {
					pr++
				}
				m := n
				if left := pOffs[pr+1] - pIdx; left < m {
					m = left
				}
				if left := cs.hg[cr].Count - co; left < m {
					m = left
				}
				val, vr := merge(strategy,
					float64(cs.hg[cr].Size), cs.hg[cr].Var,
					float64(ps.upd[pr].val), ps.upd[pr].vr)
				if val < 0 {
					val = 0 // rounding guard; estimates are nonnegative
				}
				upd = appendUpd(upd, updRun{val: int64(val + 0.5), vr: vr, count: m})
				pIdx += m
				n -= m
				co += m
				for cr < len(cs.hg) && co >= cs.hg[cr].Count {
					co -= cs.hg[cr].Count
					cr++
				}
			}
		}
		cs.upd = upd
	}
	return nil
}

// BottomUpSparse is BottomUp in run-length form: the same leaf
// estimates (identical noise draws via EstimateRuns), aggregated upward
// as sparse sums.
func BottomUpSparse(tree *hierarchy.Tree, opts Options) (SparseRelease, error) {
	depth := tree.Depth()
	if err := opts.validate(depth); err != nil {
		return nil, err
	}
	m := opts.methodFor(depth - 1)
	out := make(SparseRelease)
	for _, leaf := range tree.Leaves() {
		gen := noise.New(nodeSeed(opts.Seed, leaf.Path))
		runs, err := estimator.EstimateRuns(m, leaf.Hist, estimator.Params{Epsilon: opts.Epsilon, K: opts.K}, gen)
		if err != nil {
			return nil, fmt.Errorf("consistency: leaf %q: %w", leaf.Path, err)
		}
		out[leaf.Path] = estimator.RunsSparse(runs)
	}
	for level := depth - 2; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			sum := histogram.Sparse{}
			for _, c := range n.Children {
				sum = sum.Add(out[c.Path])
			}
			out[n.Path] = sum
		}
	}
	return out, nil
}
