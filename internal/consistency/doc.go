// Package consistency implements the hierarchical algorithms of
// Section 5: the top-down consistency algorithm (Algorithm 1) built on
// optimal matching and variance-weighted merging, plus the two baselines
// the paper evaluates against — bottom-up aggregation (Section 6.2.2)
// and Hay-style mean-consistency (shown in Section 5 to violate the
// problem requirements).
package consistency
