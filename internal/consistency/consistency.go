package consistency

import (
	"fmt"
	"runtime"
	"sync"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/histogram"
	"hcoc/internal/matching"
	"hcoc/internal/noise"
)

// MergeStrategy selects how the two size estimates of a matched group
// (one from the parent, one from the child) are reconciled (Section 5.3).
type MergeStrategy int

const (
	// MergeWeighted averages the two estimates inversely weighted by
	// their estimated variances — the paper's recommended strategy.
	MergeWeighted MergeStrategy = iota
	// MergeAverage takes the plain average, ignoring variances — the
	// naive strategy of Section 5.3, kept for the Figure 4 comparison.
	MergeAverage
)

// String names the strategy as in the paper's figures.
func (m MergeStrategy) String() string {
	switch m {
	case MergeWeighted:
		return "weighted"
	case MergeAverage:
		return "average"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(m))
	}
}

// Options configures a hierarchical release.
type Options struct {
	// Epsilon is the total privacy-loss budget; it is split evenly
	// across the Depth() levels of the hierarchy (sequential
	// composition across levels, parallel within a level).
	Epsilon float64
	// K is the public upper bound on group size (Section 4.1).
	K int
	// Methods[l] is the estimation method for level l. A single-element
	// slice is broadcast to every level. Defaults to MethodHc.
	Methods []estimator.Method
	// Merge selects the estimate-reconciliation strategy.
	Merge MergeStrategy
	// Seed drives all noise; runs with equal seeds are identical.
	// Each node's noise stream is derived from (Seed, node path), so
	// results do not depend on Workers.
	Seed int64
	// Workers bounds the number of goroutines used for the two
	// expensive, embarrassingly parallel steps: per-node estimation and
	// per-parent matching/merging. 0 means GOMAXPROCS.
	Workers int
}

// workerCount resolves Workers against the number of independent jobs.
func (o Options) workerCount(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) methodFor(level int) estimator.Method {
	switch {
	case len(o.Methods) == 0:
		return estimator.MethodHc
	case len(o.Methods) == 1:
		return o.Methods[0]
	default:
		return o.Methods[level]
	}
}

func (o Options) validate(depth int) error {
	if o.Epsilon <= 0 {
		return fmt.Errorf("consistency: epsilon must be positive, got %g", o.Epsilon)
	}
	if len(o.Methods) > 1 && len(o.Methods) != depth {
		return fmt.Errorf("consistency: got %d methods for %d levels", len(o.Methods), depth)
	}
	return nil
}

// Release maps node paths to released count-of-counts histograms.
type Release map[string]histogram.Hist

// Check verifies the four problem requirements of Section 3 against the
// public structure of the tree: integrality and nonnegativity (by
// construction of histogram.Hist but re-validated), the group-size
// constraint, and parent/child consistency.
func (r Release) Check(tree *hierarchy.Tree) error {
	var err error
	tree.Walk(func(n *hierarchy.Node) {
		if err != nil {
			return
		}
		h, ok := r[n.Path]
		if !ok {
			err = fmt.Errorf("consistency: no release for node %q", n.Path)
			return
		}
		if e := h.Validate(); e != nil {
			err = fmt.Errorf("consistency: node %q: %w", n.Path, e)
			return
		}
		if h.Groups() != n.G() {
			err = fmt.Errorf("consistency: node %q released %d groups, public count is %d", n.Path, h.Groups(), n.G())
			return
		}
		if !n.IsLeaf() {
			var sum histogram.Hist
			for _, c := range n.Children {
				sum = sum.Add(r[c.Path])
			}
			if !h.Equal(sum) {
				err = fmt.Errorf("consistency: node %q is not the sum of its children", n.Path)
			}
		}
	})
	return err
}

// nodeState carries the per-node intermediate results of Algorithm 1.
type nodeState struct {
	hg  histogram.GroupSizes // original estimate, sorted (used for matching)
	vg  []float64            // variance of hg entries (Section 5.1)
	upd histogram.GroupSizes // updated (merged, rounded) sizes, index-aligned with hg
	uvr []float64            // updated variances
}

// TopDown runs Algorithm 1: per-level DP estimation, top-down matching
// and merging, then back-substitution so that every parent equals the sum
// of its children. The result satisfies all four requirements of
// Section 3.
//
// It computes through the run-length pipeline (TopDownSparse) and
// densifies the result; callers that keep many releases resident — the
// serving engine above all — should call TopDownSparse directly and
// stay sparse.
func TopDown(tree *hierarchy.Tree, opts Options) (Release, error) {
	s, err := TopDownSparse(tree, opts)
	if err != nil {
		return nil, err
	}
	return s.Dense(), nil
}

// TopDownDense is the dense per-group reference implementation of
// Algorithm 1: every estimate is a G-length group-size array walked one
// group at a time. It releases bit-for-bit the same histograms as
// TopDownSparse (the differential tests enforce this); it is retained
// as the oracle for those tests and as the baseline the benchmarks
// measure the sparse pipeline against.
func TopDownDense(tree *hierarchy.Tree, opts Options) (Release, error) {
	depth := tree.Depth()
	if err := opts.validate(depth); err != nil {
		return nil, err
	}
	epsLevel := opts.Epsilon / float64(depth)

	// Lines 1-7: per-node DP estimates and variances. Nodes are
	// independent (parallel composition), so this fans out across
	// Workers goroutines; each node's noise stream is derived from
	// (Seed, path) so the output is identical at any parallelism.
	states, err := estimateAll(tree, opts, epsLevel)
	if err != nil {
		return nil, err
	}

	// Lines 8-12: top-down matching and merging.
	if err := matchLevels(tree, states, opts); err != nil {
		return nil, err
	}

	// Line 13: leaves' updated sizes become their final histograms.
	out := make(Release, len(states))
	for _, leaf := range tree.Leaves() {
		s := states[leaf.Path]
		sizes := s.upd
		if sizes == nil {
			// Single-level tree: the root is the only leaf.
			sizes = s.hg
		}
		out[leaf.Path] = sizes.Hist()
	}

	// Lines 14-15: back-substitution.
	for level := depth - 2; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			var sum histogram.Hist
			for _, c := range n.Children {
				sum = sum.Add(out[c.Path])
			}
			out[n.Path] = sum
		}
	}
	return out, nil
}

// matchLevels runs lines 8-12 of Algorithm 1: seed the root's updated
// estimate with its own, then walk the levels top-down, matching and
// merging each parent with its children. Parents within a level are
// independent — each one reads only its own state (finalized at the
// previous level) and writes only its own children's states, and every
// node has exactly one parent — so the per-level loop fans out across
// opts.Workers goroutines.
func matchLevels(tree *hierarchy.Tree, states map[string]*nodeState, opts Options) error {
	rootState := states[tree.Root.Path]
	rootState.upd = rootState.hg.Clone()
	rootState.uvr = append([]float64(nil), rootState.vg...)

	for level := 0; level < tree.Depth()-1; level++ {
		parents := tree.ByLevel[level]
		err := forEachNode(parents, opts.workerCount(len(parents)), func(parent *hierarchy.Node) error {
			return matchParent(states, parent, opts.Merge)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// matchParent matches one parent's original estimate against its
// children's original estimates (Algorithm 2), then merges each child
// estimate with the parent's updated value at the matched index
// (Section 5.3), filling in the children's updated sizes and variances.
func matchParent(states map[string]*nodeState, parent *hierarchy.Node, strategy MergeStrategy) error {
	if len(parent.Children) == 0 {
		return nil
	}
	ps := states[parent.Path]
	childHg := make([]histogram.GroupSizes, len(parent.Children))
	for i, c := range parent.Children {
		childHg[i] = states[c.Path].hg
	}
	ms, err := matching.Compute(ps.hg, childHg)
	if err != nil {
		return fmt.Errorf("consistency: node %q: %w", parent.Path, err)
	}
	for i, c := range parent.Children {
		cs := states[c.Path]
		cs.upd = make(histogram.GroupSizes, len(cs.hg))
		cs.uvr = make([]float64, len(cs.hg))
		for j := range cs.hg {
			pi := ms[i].ParentIndex[j]
			val, vr := merge(strategy,
				float64(cs.hg[j]), cs.vg[j],
				float64(ps.upd[pi]), ps.uvr[pi])
			if val < 0 {
				val = 0 // rounding guard; estimates are nonnegative
			}
			cs.upd[j] = int64(val + 0.5)
			cs.uvr[j] = vr
		}
	}
	return nil
}

// forEachNode applies fn to every node, fanning out across workers
// goroutines; with a single worker it runs inline with no goroutine
// overhead. The first error in node order is returned.
func forEachNode(nodes []*hierarchy.Node, workers int, fn func(*hierarchy.Node) error) error {
	if workers <= 1 {
		for _, n := range nodes {
			if err := fn(n); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(nodes))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(nodes[i])
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// merge reconciles a child estimate (xc, vc) with the matched parent
// estimate (xp, vp), returning the merged value and its variance
// (Equations 5 and 6).
func merge(strategy MergeStrategy, xc, vc, xp, vp float64) (float64, float64) {
	switch strategy {
	case MergeAverage:
		return (xc + xp) / 2, (vc + vp) / 4
	default: // MergeWeighted
		wc, wp := 1/vc, 1/vp
		return (xc*wc + xp*wp) / (wc + wp), 1 / (wc + wp)
	}
}

// BottomUp is the baseline of Section 6.2.2: the entire budget is spent
// at the leaves (parallel composition: disjoint leaves each get the full
// epsilon), and internal nodes are the sums of their children. It
// satisfies all four requirements but concentrates error at upper
// levels. Like TopDown it computes through the run-length pipeline;
// BottomUpDense is the per-group reference.
func BottomUp(tree *hierarchy.Tree, opts Options) (Release, error) {
	s, err := BottomUpSparse(tree, opts)
	if err != nil {
		return nil, err
	}
	return s.Dense(), nil
}

// BottomUpDense is the dense per-group reference implementation of
// BottomUp, retained for the differential tests and benchmarks.
func BottomUpDense(tree *hierarchy.Tree, opts Options) (Release, error) {
	depth := tree.Depth()
	if err := opts.validate(depth); err != nil {
		return nil, err
	}
	m := opts.methodFor(depth - 1)
	out := make(Release)
	for _, leaf := range tree.Leaves() {
		gen := noise.New(nodeSeed(opts.Seed, leaf.Path))
		res, err := estimator.Estimate(m, leaf.Hist, estimator.Params{Epsilon: opts.Epsilon, K: opts.K}, gen)
		if err != nil {
			return nil, fmt.Errorf("consistency: leaf %q: %w", leaf.Path, err)
		}
		out[leaf.Path] = res.Hist
	}
	for level := depth - 2; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			var sum histogram.Hist
			for _, c := range n.Children {
				sum = sum.Add(out[c.Path])
			}
			out[n.Path] = sum
		}
	}
	return out, nil
}
