package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcoc/internal/hierarchy"
)

func TestPrivateGroupCountsStructure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 2+r.Intn(2))
		counts, err := PrivateGroupCounts(tree, 1.0, seed)
		if err != nil {
			return false
		}
		return CheckGroupCounts(tree, counts) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrivateGroupCountsAccuracyAtHighEpsilon(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tree := randomTree(r, 3)
	counts, err := PrivateGroupCounts(tree, 5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *hierarchy.Node) {
		diff := counts[n.Path] - n.G()
		if diff < 0 {
			diff = -diff
		}
		if diff > 2 {
			t.Errorf("node %q: count %d vs true %d at eps=5000", n.Path, counts[n.Path], n.G())
		}
	})
}

func TestPrivateGroupCountsRejectsBadEpsilon(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	tree := randomTree(r, 2)
	if _, err := PrivateGroupCounts(tree, 0, 1); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestCheckGroupCountsCatchesViolations(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	tree := randomTree(r, 2)
	counts, err := PrivateGroupCounts(tree, 1, 19)
	if err != nil {
		t.Fatal(err)
	}
	// Missing node.
	if CheckGroupCounts(tree, map[string]int64{}) == nil {
		t.Error("missing counts accepted")
	}
	// Broken additivity.
	counts[tree.Root.Path] += 3
	if CheckGroupCounts(tree, counts) == nil {
		t.Error("inconsistent counts accepted")
	}
	// Negative count.
	counts[tree.Root.Path] -= 3
	leaf := tree.Leaves()[0]
	counts[leaf.Path] = -1
	if CheckGroupCounts(tree, counts) == nil {
		t.Error("negative count accepted")
	}
}

func TestPrivateGroupCountsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	tree := randomTree(r, 3)
	a, err := PrivateGroupCounts(tree, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrivateGroupCounts(tree, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for path, c := range a {
		if b[path] != c {
			t.Fatalf("node %q differs across identical seeds", path)
		}
	}
}
