package consistency

import (
	"fmt"

	"hcoc/internal/hierarchy"
	"hcoc/internal/noise"
	"hcoc/internal/simplex"
)

// PrivateGroupCounts implements the extension sketched in footnote 5 of
// the paper: when the Groups table is NOT considered public, estimate
// the number of groups in every region under differential privacy
// (with respect to adding or removing one group) and post-process the
// estimates into nonnegative integers that are consistent across the
// hierarchy.
//
// The budget is split evenly across levels; each node's count receives
// double-geometric noise of scale levels/epsilon. Consistency is then
// restored top-down: the root count is its (clamped) noisy estimate, and
// each parent's count is divided among its children by Euclidean
// projection onto the simplex {c >= 0, sum c = parent} followed by
// largest-remainder rounding — the "relatively small nonnegative least
// squares problem" of the footnote, solved exactly level by level.
//
// The returned counts can be fed to the main release via a tree whose
// histograms are scaled accordingly; they satisfy count >= 0,
// integrality, and parent = sum of children.
func PrivateGroupCounts(tree *hierarchy.Tree, epsilon float64, seed int64) (map[string]int64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("consistency: epsilon must be positive, got %g", epsilon)
	}
	depth := tree.Depth()
	scale := float64(depth) / epsilon

	// Per-node noisy counts, seeded per path (order-independent).
	noisy := make(map[string]float64)
	tree.Walk(func(n *hierarchy.Node) {
		gen := noise.New(nodeSeed(seed, n.Path))
		noisy[n.Path] = float64(n.G() + gen.DoubleGeometric(scale))
	})

	out := make(map[string]int64, len(noisy))
	root := noisy[tree.Root.Path]
	if root < 0 {
		root = 0
	}
	out[tree.Root.Path] = int64(root + 0.5)

	for level := 0; level < depth-1; level++ {
		for _, parent := range tree.ByLevel[level] {
			if len(parent.Children) == 0 {
				continue
			}
			ys := make([]float64, len(parent.Children))
			for i, c := range parent.Children {
				ys[i] = noisy[c.Path]
			}
			counts := simplex.ProjectAndRound(ys, out[parent.Path])
			for i, c := range parent.Children {
				out[c.Path] = counts[i]
			}
		}
	}
	return out, nil
}

// CheckGroupCounts verifies the structural requirements of a private
// group-count release: nonnegative integers with parent = sum of
// children.
func CheckGroupCounts(tree *hierarchy.Tree, counts map[string]int64) error {
	var err error
	tree.Walk(func(n *hierarchy.Node) {
		if err != nil {
			return
		}
		c, ok := counts[n.Path]
		if !ok {
			err = fmt.Errorf("consistency: missing count for %q", n.Path)
			return
		}
		if c < 0 {
			err = fmt.Errorf("consistency: negative count %d at %q", c, n.Path)
			return
		}
		if !n.IsLeaf() {
			var sum int64
			for _, ch := range n.Children {
				sum += counts[ch.Path]
			}
			if sum != c {
				err = fmt.Errorf("consistency: node %q count %d != children sum %d", n.Path, c, sum)
			}
		}
	})
	return err
}
