package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/histogram"
)

// randomTree builds a random 2- or 3-level hierarchy.
func randomTree(r *rand.Rand, levels int) *hierarchy.Tree {
	nGroups := 20 + r.Intn(200)
	var groups []hierarchy.Group
	states := []string{"A", "B", "C"}
	counties := []string{"x", "y"}
	for i := 0; i < nGroups; i++ {
		path := []string{states[r.Intn(len(states))]}
		if levels == 3 {
			path = append(path, counties[r.Intn(len(counties))])
		}
		groups = append(groups, hierarchy.Group{Path: path, Size: int64(r.Intn(20))})
	}
	tree, err := hierarchy.BuildTree("root", groups)
	if err != nil {
		panic(err)
	}
	return tree
}

func defaultOpts(seed int64) Options {
	return Options{Epsilon: 1, K: 100, Merge: MergeWeighted, Seed: seed}
}

func TestTopDownSatisfiesAllRequirements(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		levels := 2 + r.Intn(2)
		tree := randomTree(r, levels)
		for _, methods := range [][]estimator.Method{
			{estimator.MethodHc},
			{estimator.MethodHg},
		} {
			opts := defaultOpts(seed)
			opts.Methods = methods
			rel, err := TopDown(tree, opts)
			if err != nil {
				t.Logf("TopDown: %v", err)
				return false
			}
			if err := rel.Check(tree); err != nil {
				t.Logf("Check: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTopDownMixedMethodsPerLevel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tree := randomTree(r, 3)
	opts := defaultOpts(7)
	opts.Methods = []estimator.Method{estimator.MethodHc, estimator.MethodHg, estimator.MethodHc}
	rel, err := TopDown(tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownMergeStrategies(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tree := randomTree(r, 2)
	for _, merge := range []MergeStrategy{MergeWeighted, MergeAverage} {
		opts := defaultOpts(8)
		opts.Merge = merge
		rel, err := TopDown(tree, opts)
		if err != nil {
			t.Fatalf("%v: %v", merge, err)
		}
		if err := rel.Check(tree); err != nil {
			t.Fatalf("%v: %v", merge, err)
		}
	}
}

func TestTopDownDeterministicUnderSeed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tree := randomTree(r, 2)
	a, err := TopDown(tree, defaultOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopDown(tree, defaultOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	for path, h := range a {
		if !h.Equal(b[path]) {
			t.Fatalf("node %q differs across identical seeds", path)
		}
	}
}

func TestTopDownSingleLevelTree(t *testing.T) {
	tree, err := hierarchy.BuildTree("only", []hierarchy.Group{
		{Path: nil, Size: 3}, {Path: nil, Size: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := TopDown(tree, defaultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownHighEpsilonRecoversTruth(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tree := randomTree(r, 2)
	opts := defaultOpts(10)
	opts.Epsilon = 10000
	rel, err := TopDown(tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *hierarchy.Node) {
		if d := histogram.EMD(n.Hist, rel[n.Path]); d > 2 {
			t.Errorf("node %q: EMD %d at eps=10000, want ~0", n.Path, d)
		}
	})
}

func TestTopDownRejectsBadOptions(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tree := randomTree(r, 2)
	if _, err := TopDown(tree, Options{Epsilon: 0, K: 10}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	opts := defaultOpts(1)
	opts.Methods = []estimator.Method{estimator.MethodHc, estimator.MethodHc, estimator.MethodHc}
	if _, err := TopDown(tree, opts); err == nil {
		t.Error("method count mismatch accepted")
	}
}

func TestBottomUpSatisfiesAllRequirements(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 2+r.Intn(2))
		rel, err := BottomUp(tree, defaultOpts(seed))
		if err != nil {
			return false
		}
		return rel.Check(tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBottomUpBetterAtLeavesWorseAtRoot(t *testing.T) {
	// Section 6.2.2: with the same total budget, bottom-up should win at
	// the leaves and lose at the root (it wastes no budget on upper
	// levels but aggregates leaf noise upward).
	r := rand.New(rand.NewSource(12))
	var groups []hierarchy.Group
	for i := 0; i < 3000; i++ {
		st := string(rune('A' + r.Intn(20)))
		groups = append(groups, hierarchy.Group{Path: []string{st}, Size: int64(r.Intn(50))})
	}
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	var buRoot, tdRoot, buLeaf, tdLeaf int64
	const runs = 5
	for i := int64(0); i < runs; i++ {
		opts := defaultOpts(i)
		opts.Epsilon = 0.5
		bu, err := BottomUp(tree, opts)
		if err != nil {
			t.Fatal(err)
		}
		td, err := TopDown(tree, opts)
		if err != nil {
			t.Fatal(err)
		}
		buRoot += histogram.EMD(tree.Root.Hist, bu[tree.Root.Path])
		tdRoot += histogram.EMD(tree.Root.Hist, td[tree.Root.Path])
		for _, leaf := range tree.Leaves() {
			buLeaf += histogram.EMD(leaf.Hist, bu[leaf.Path])
			tdLeaf += histogram.EMD(leaf.Hist, td[leaf.Path])
		}
	}
	if buRoot <= tdRoot {
		t.Errorf("bottom-up root error %d should exceed top-down %d", buRoot, tdRoot)
	}
	if buLeaf >= tdLeaf {
		t.Errorf("bottom-up leaf error %d should be below top-down %d", buLeaf, tdLeaf)
	}
}

func TestWeightedMergeBeatsAverageAtRoot(t *testing.T) {
	// Figure 4: weighted averaging should reduce top-level error.
	r := rand.New(rand.NewSource(13))
	var groups []hierarchy.Group
	for i := 0; i < 5000; i++ {
		st := string(rune('A' + r.Intn(10)))
		size := int64(r.Intn(8))
		if r.Intn(100) == 0 {
			size = int64(100 + r.Intn(900)) // sparse heavy tail
		}
		groups = append(groups, hierarchy.Group{Path: []string{st}, Size: size})
	}
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	var weighted, average int64
	const runs = 8
	for i := int64(0); i < runs; i++ {
		for _, merge := range []MergeStrategy{MergeWeighted, MergeAverage} {
			opts := defaultOpts(i)
			opts.Epsilon = 0.2
			opts.Merge = merge
			rel, err := TopDown(tree, opts)
			if err != nil {
				t.Fatal(err)
			}
			e := histogram.EMD(tree.Root.Hist, rel[tree.Root.Path])
			if merge == MergeWeighted {
				weighted += e
			} else {
				average += e
			}
		}
	}
	if weighted >= average {
		t.Errorf("weighted merge root error %d should be below plain average %d", weighted, average)
	}
}

func TestMergeStrategyString(t *testing.T) {
	if MergeWeighted.String() != "weighted" || MergeAverage.String() != "average" {
		t.Error("unexpected merge strategy names")
	}
	if MergeStrategy(9).String() == "" {
		t.Error("unknown strategy should still stringify")
	}
}

func TestReleaseCheckCatchesViolations(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	tree := randomTree(r, 2)
	rel, err := TopDown(tree, defaultOpts(14))
	if err != nil {
		t.Fatal(err)
	}
	// Missing node.
	broken := Release{}
	if broken.Check(tree) == nil {
		t.Error("missing nodes accepted")
	}
	// Wrong group count.
	rel2 := Release{}
	for k, v := range rel {
		rel2[k] = v
	}
	root := tree.Root.Path
	rel2[root] = rel2[root].Add(histogram.Hist{5})
	if rel2.Check(tree) == nil {
		t.Error("wrong group count accepted")
	}
}
