package consistency

import (
	"math"
	"math/rand"
	"testing"

	"hcoc/internal/hierarchy"
	"hcoc/internal/noise"
)

// regularTree builds a tree with uniform fanout per level.
func regularTree(t *testing.T, fanout, leavesPerChild int) *hierarchy.Tree {
	t.Helper()
	r := rand.New(rand.NewSource(21))
	var groups []hierarchy.Group
	for s := 0; s < fanout; s++ {
		for c := 0; c < leavesPerChild; c++ {
			// Small counts at the children make the subtraction step
			// go negative with realistic noise.
			n := 1 + r.Intn(3)
			for g := 0; g < n; g++ {
				groups = append(groups, hierarchy.Group{
					Path: []string{string(rune('A' + s)), string(rune('a' + c))},
					Size: int64(r.Intn(4)),
				})
			}
		}
	}
	tree, err := hierarchy.BuildTree("root", groups)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestMeanConsistencyEnforcesAdditivity(t *testing.T) {
	tree := regularTree(t, 3, 2)
	gen := noise.New(5)
	noisy := NoisyVectors(tree, 8, 1.0, gen)
	fixed, err := MeanConsistency(tree, noisy)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *hierarchy.Node) {
		if n.IsLeaf() {
			return
		}
		for i := 0; i < 8; i++ {
			var sum float64
			for _, c := range n.Children {
				sum += fixed[c.Path][i]
			}
			if math.Abs(sum-fixed[n.Path][i]) > 1e-6 {
				t.Fatalf("node %q cell %d: children sum %f != parent %f", n.Path, i, sum, fixed[n.Path][i])
			}
		}
	})
}

func TestMeanConsistencyProducesInvalidOutputs(t *testing.T) {
	// The reason the paper rejects mean-consistency (Section 5): its
	// output violates integrality and nonnegativity. With enough seeds
	// we must observe both violations.
	tree := regularTree(t, 3, 2)
	sawNegative, sawFractional := false, false
	for seed := int64(0); seed < 50 && !(sawNegative && sawFractional); seed++ {
		gen := noise.New(seed)
		noisy := NoisyVectors(tree, 8, 1.0, gen)
		fixed, err := MeanConsistency(tree, noisy)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range fixed {
			for _, x := range v {
				if x < 0 {
					sawNegative = true
				}
				if x != math.Trunc(x) {
					sawFractional = true
				}
			}
		}
	}
	if !sawNegative {
		t.Error("mean-consistency never produced a negative cell; the paper's motivation expects it")
	}
	if !sawFractional {
		t.Error("mean-consistency never produced a fractional cell")
	}
}

func TestMeanConsistencyImprovesOverRawNoise(t *testing.T) {
	// Consistency post-processing should reduce squared error on
	// average (it is a projection toward the truth-containing subspace).
	tree := regularTree(t, 4, 3)
	var rawErr, fixedErr float64
	for seed := int64(0); seed < 20; seed++ {
		gen := noise.New(seed)
		noisy := NoisyVectors(tree, 8, 1.0, gen)
		fixed, err := MeanConsistency(tree, noisy)
		if err != nil {
			t.Fatal(err)
		}
		tree.Walk(func(n *hierarchy.Node) {
			truth := n.Hist.Pad(8)
			for i := 0; i < 8; i++ {
				dr := noisy[n.Path][i] - float64(truth[i])
				df := fixed[n.Path][i] - float64(truth[i])
				rawErr += dr * dr
				fixedErr += df * df
			}
		})
	}
	if fixedErr >= rawErr {
		t.Errorf("mean-consistency error %f should be below raw %f", fixedErr, rawErr)
	}
}

func TestMeanConsistencyRejectsIrregularTrees(t *testing.T) {
	groups := []hierarchy.Group{
		{Path: []string{"A", "a"}, Size: 1},
		{Path: []string{"A", "b"}, Size: 1},
		{Path: []string{"B", "a"}, Size: 1},
	}
	tree, err := hierarchy.BuildTree("root", groups)
	if err != nil {
		t.Fatal(err)
	}
	gen := noise.New(1)
	noisy := NoisyVectors(tree, 4, 1.0, gen)
	if _, err := MeanConsistency(tree, noisy); err == nil {
		t.Error("irregular fanout accepted")
	}
}

func TestMeanConsistencyRejectsBadVectors(t *testing.T) {
	tree := regularTree(t, 2, 2)
	gen := noise.New(1)
	noisy := NoisyVectors(tree, 4, 1.0, gen)
	noisy[tree.Root.Path] = []float64{1, 2} // wrong width
	if _, err := MeanConsistency(tree, noisy); err == nil {
		t.Error("mismatched widths accepted")
	}
}
