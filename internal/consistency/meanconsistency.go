package consistency

import (
	"fmt"

	"hcoc/internal/hierarchy"
	"hcoc/internal/noise"
)

// MeanConsistency implements the Hay et al. style consistency
// post-processing that Section 5 argues is unsuitable for
// count-of-counts histograms: given independent noisy vectors per node,
// it returns the least-squares consistent estimates (parent = sum of
// children) via the classic two-phase algorithm for trees with uniform
// fanout and uniform noise variance.
//
// It is retained purely as the negative baseline: its output is
// real-valued and can be negative (the "subtraction step" — see the
// demonstration test), violating the integrality and nonnegativity
// requirements of Problem 1, which is exactly why the paper develops the
// matching-based algorithm instead.
//
// noisy maps node paths to per-cell noisy counts; every vector must have
// the same length. The tree must have uniform fanout per level for the
// two-phase formulas to be the exact OLS solution.
func MeanConsistency(tree *hierarchy.Tree, noisy map[string][]float64) (map[string][]float64, error) {
	width := -1
	for _, v := range noisy {
		if width == -1 {
			width = len(v)
		} else if len(v) != width {
			return nil, fmt.Errorf("consistency: mean-consistency requires equal-length vectors")
		}
	}
	depth := tree.Depth()
	// fanout[l] is the children count of nodes at level l.
	fanout := make([]int, depth)
	for l := 0; l < depth-1; l++ {
		f := -1
		for _, n := range tree.ByLevel[l] {
			if f == -1 {
				f = len(n.Children)
			} else if f != len(n.Children) {
				return nil, fmt.Errorf("consistency: mean-consistency requires uniform fanout at level %d", l)
			}
		}
		if f < 2 {
			return nil, fmt.Errorf("consistency: mean-consistency requires fanout >= 2 at level %d, got %d", l, f)
		}
		fanout[l] = f
	}

	// Phase 1 (bottom-up weighted averaging): for a node at height h
	// with fanout f,
	//   z_v = (f^h - f^(h-1))/(f^h - 1) * y_v
	//       + (f^(h-1) - 1)/(f^h - 1) * sum_c z_c
	// (leaves: z_v = y_v).
	z := make(map[string][]float64, len(noisy))
	for level := depth - 1; level >= 0; level-- {
		for _, n := range tree.ByLevel[level] {
			y := noisy[n.Path]
			if y == nil {
				return nil, fmt.Errorf("consistency: missing noisy vector for %q", n.Path)
			}
			if n.IsLeaf() {
				z[n.Path] = append([]float64(nil), y...)
				continue
			}
			h := depth - 1 - level // height above leaves
			f := float64(fanout[level])
			fh := pow(f, h)
			fh1 := pow(f, h-1)
			a := (fh - fh1) / (fh - 1)
			b := (fh1 - 1) / (fh - 1)
			out := make([]float64, width)
			for i := range out {
				var childSum float64
				for _, c := range n.Children {
					childSum += z[c.Path][i]
				}
				out[i] = a*y[i] + b*childSum
			}
			z[n.Path] = out
		}
	}

	// Phase 2 (top-down subtraction): the root keeps z; each child is
	// adjusted by an equal share of its parent's residual:
	//   hbar_c = z_c + (hbar_v - sum_w z_w) / f.
	out := make(map[string][]float64, len(noisy))
	out[tree.Root.Path] = z[tree.Root.Path]
	for level := 0; level < depth-1; level++ {
		for _, n := range tree.ByLevel[level] {
			f := float64(len(n.Children))
			parent := out[n.Path]
			for i := range parent {
				var childSum float64
				for _, c := range n.Children {
					childSum += z[c.Path][i]
				}
				adj := (parent[i] - childSum) / f
				for _, c := range n.Children {
					if out[c.Path] == nil {
						out[c.Path] = make([]float64, width)
						copy(out[c.Path], z[c.Path])
					}
					out[c.Path][i] = z[c.Path][i] + adj
				}
			}
		}
	}
	return out, nil
}

func pow(f float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= f
	}
	return out
}

// NoisyVectors produces the per-node noisy histograms that
// MeanConsistency consumes: each node's true histogram padded to a
// common width with double-geometric noise of the given per-level
// epsilon added to every cell (sensitivity 2 as in the naive method).
func NoisyVectors(tree *hierarchy.Tree, width int, epsilon float64, gen *noise.Gen) map[string][]float64 {
	out := make(map[string][]float64)
	tree.Walk(func(n *hierarchy.Node) {
		padded := n.Hist.Pad(width)[:width]
		noisy := gen.AddDoubleGeometric(padded, 2/epsilon)
		v := make([]float64, width)
		for i, x := range noisy {
			v[i] = float64(x)
		}
		out[n.Path] = v
	})
	return out
}
