package consistency

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
)

// changedSet expands touched leaf paths (name slices below the root)
// into the node-path set TopDownSparseFrom requires: each touched leaf
// plus every ancestor up to the root.
func changedSet(rootName string, touched [][]string) map[string]bool {
	out := map[string]bool{rootName: true}
	for _, path := range touched {
		p := rootName
		for _, name := range path {
			p += "/" + name
			out[p] = true
		}
	}
	return out
}

// mutateGroups applies a random single-leaf delta to a group list:
// picks one leaf path already present and adds, removes, or resizes
// groups there. Returns the new list and the touched leaf path.
func mutateGroups(r *rand.Rand, groups []hierarchy.Group) ([]hierarchy.Group, []string) {
	leaves := map[string][]string{}
	for _, g := range groups {
		leaves[strings.Join(g.Path, "/")] = g.Path
	}
	var keys []string
	for k := range leaves {
		keys = append(keys, k)
	}
	// Map iteration order is random; sort for reproducibility.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	target := leaves[keys[r.Intn(len(keys))]]
	tk := strings.Join(target, "/")

	out := make([]hierarchy.Group, 0, len(groups)+3)
	switch r.Intn(3) {
	case 0: // add groups
		out = append(out, groups...)
		for n := 1 + r.Intn(3); n > 0; n-- {
			out = append(out, hierarchy.Group{Path: target, Size: int64(r.Intn(50))})
		}
	case 1: // remove one group at the target leaf (keep at least one group overall)
		removed := false
		for _, g := range groups {
			if !removed && strings.Join(g.Path, "/") == tk && len(groups) > 1 {
				removed = true
				continue
			}
			out = append(out, g)
		}
	default: // drift: resize one group at the target leaf
		drifted := false
		for _, g := range groups {
			if !drifted && strings.Join(g.Path, "/") == tk {
				g.Size += int64(1 + r.Intn(20))
				drifted = true
			}
			out = append(out, g)
		}
	}
	return out, target
}

// TestTopDownSparseFromDifferential pins the incremental guarantee:
// over randomized trees and single-leaf deltas, a release recomputed
// from the prior version's state is bit-identical to a from-scratch
// release of the mutated tree, while estimating strictly fewer nodes
// whenever the tree has more than one leaf branch.
func TestTopDownSparseFromDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	methods := [][]estimator.Method{
		nil,
		{estimator.MethodHc},
		{estimator.MethodHg},
		{estimator.MethodHcL2},
	}
	for trial := 0; trial < 30; trial++ {
		tree := randomDiffTree(t, r)
		opts := Options{
			Epsilon: 0.2 + r.Float64(),
			K:       100 + r.Intn(1000),
			Methods: methods[trial%len(methods)],
			Merge:   MergeStrategy(trial % 2),
			Seed:    int64(100 + trial),
		}
		label := fmt.Sprintf("trial %d (depth %d)", trial, tree.Depth())

		base, state, stats, err := TopDownSparseFrom(tree, opts, nil, nil)
		if err != nil {
			t.Fatalf("%s: base: %v", label, err)
		}
		if !stats.Full() || stats.NodesEstimated != stats.NodesTotal {
			t.Fatalf("%s: cold release should estimate every node, got %+v", label, stats)
		}
		full, err := TopDownSparse(tree, opts)
		if err != nil {
			t.Fatalf("%s: full: %v", label, err)
		}
		assertSameSparse(t, label+" cold", full, base)

		// Chain several deltas, carrying state forward each time.
		groups := treeGroups(tree)
		for step := 0; step < 4; step++ {
			mutated, touched := mutateGroups(r, groups)
			next, err := hierarchy.BuildTree(tree.Root.Name, mutated)
			if err != nil {
				t.Fatalf("%s step %d: rebuild: %v", label, step, err)
			}
			changed := changedSet(tree.Root.Name, [][]string{touched})
			incr, nextState, st, err := TopDownSparseFrom(next, opts, state, changed)
			if err != nil {
				t.Fatalf("%s step %d: incremental: %v", label, step, err)
			}
			scratch, err := TopDownSparse(next, opts)
			if err != nil {
				t.Fatalf("%s step %d: scratch: %v", label, step, err)
			}
			assertSameSparse(t, fmt.Sprintf("%s step %d", label, step), scratch, incr)

			if st.NodesTotal != len(next.Nodes()) {
				t.Fatalf("%s step %d: NodesTotal = %d, want %d", label, step, st.NodesTotal, len(next.Nodes()))
			}
			if len(next.Leaves()) > 1 && next.Depth() == tree.Depth() {
				if st.NodesEstimated >= st.NodesTotal {
					t.Fatalf("%s step %d: single-leaf delta estimated all %d nodes", label, step, st.NodesTotal)
				}
			}
			tree, groups, state = next, mutated, nextState
		}
	}
}

// TestTopDownSparseFromDepthChange pins the fallback: a delta that
// changes the tree depth re-splits the per-level budget, so reuse is
// abandoned and the release still matches from-scratch.
func TestTopDownSparseFromDepthChange(t *testing.T) {
	g2 := []hierarchy.Group{
		{Path: []string{"a", "x"}, Size: 3},
		{Path: []string{"b", "y"}, Size: 5},
	}
	g3 := []hierarchy.Group{
		{Path: []string{"a", "x", "p"}, Size: 3},
		{Path: []string{"b", "y", "q"}, Size: 5},
	}
	opts := Options{Epsilon: 1, K: 100, Seed: 9}
	t2, err := hierarchy.BuildTree("root", g2)
	if err != nil {
		t.Fatal(err)
	}
	_, state, _, err := TopDownSparseFrom(t2, opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := hierarchy.BuildTree("root", g3)
	if err != nil {
		t.Fatal(err)
	}
	incr, _, stats, err := TopDownSparseFrom(t3, opts, state, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full() {
		t.Fatalf("depth change must force a full recompute, got %+v", stats)
	}
	scratch, err := TopDownSparse(t3, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSparse(t, "depth change", scratch, incr)
}

// TestRecomputeStateAccounting sanity-checks the state accessors.
func TestRecomputeStateAccounting(t *testing.T) {
	var nilState *RecomputeState
	if nilState.CostBytes() != 0 || nilState.Nodes() != 0 {
		t.Fatal("nil state must account as empty")
	}
	tree, err := hierarchy.BuildTree("root", []hierarchy.Group{{Path: []string{"a"}, Size: 2}})
	if err != nil {
		t.Fatal(err)
	}
	_, state, _, err := TopDownSparseFrom(tree, Options{Epsilon: 1, K: 50}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if state.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", state.Nodes())
	}
	if state.CostBytes() <= 0 {
		t.Fatalf("CostBytes = %d, want > 0", state.CostBytes())
	}
}

// assertSameSparse fails unless two sparse releases are bit-identical.
func assertSameSparse(t *testing.T, label string, want, got SparseRelease) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: released %d nodes, want %d", label, len(got), len(want))
	}
	for path, w := range want {
		g, ok := got[path]
		if !ok {
			t.Fatalf("%s: missing node %q", label, path)
		}
		if !w.Equal(g) {
			t.Fatalf("%s: node %q differs\nwant = %v\ngot  = %v", label, path, w, g)
		}
	}
}

// treeGroups flattens a tree back into its leaf group records.
func treeGroups(tree *hierarchy.Tree) []hierarchy.Group {
	var out []hierarchy.Group
	for _, leaf := range tree.Leaves() {
		names := strings.Split(leaf.Path, "/")[1:]
		for size, count := range leaf.Hist {
			for n := count; n > 0; n-- {
				out = append(out, hierarchy.Group{Path: names, Size: int64(size)})
			}
		}
	}
	return out
}
