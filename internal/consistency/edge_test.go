package consistency

import (
	"fmt"
	"math/rand"
	"testing"

	"hcoc/internal/estimator"
	"hcoc/internal/hierarchy"
	"hcoc/internal/histogram"
)

// TestTopDownDeepHierarchy exercises a 5-level tree; the paper's
// algorithm generalizes to any L, and the budget split and matching must
// hold at every level.
func TestTopDownDeepHierarchy(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var groups []hierarchy.Group
	for i := 0; i < 800; i++ {
		groups = append(groups, hierarchy.Group{
			Path: []string{
				fmt.Sprintf("r%d", r.Intn(2)),
				fmt.Sprintf("s%d", r.Intn(2)),
				fmt.Sprintf("t%d", r.Intn(2)),
				fmt.Sprintf("u%d", r.Intn(2)),
			},
			Size: int64(r.Intn(15)),
		})
	}
	tree, err := hierarchy.BuildTree("root", groups)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", tree.Depth())
	}
	rel, err := TopDown(tree, defaultOpts(41))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
}

// TestTopDownUnbalancedFanout covers one-child chains and wide nodes in
// the same tree.
func TestTopDownUnbalancedFanout(t *testing.T) {
	var groups []hierarchy.Group
	// State A has one county; state B has twelve.
	for i := 0; i < 40; i++ {
		groups = append(groups, hierarchy.Group{Path: []string{"A", "only"}, Size: int64(i % 5)})
	}
	for c := 0; c < 12; c++ {
		for i := 0; i < 5; i++ {
			groups = append(groups, hierarchy.Group{
				Path: []string{"B", fmt.Sprintf("c%02d", c)}, Size: int64(i),
			})
		}
	}
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := TopDown(tree, defaultOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
}

// TestTopDownAllZeroSizes covers data where every group is empty (e.g.
// a race absent from every block): the release must be exactly the truth
// since the only consistent nonnegative histogram with G groups of total
// size 0 is all-zeros... after noise it must still produce G groups.
func TestTopDownAllZeroSizes(t *testing.T) {
	var groups []hierarchy.Group
	for i := 0; i < 60; i++ {
		groups = append(groups, hierarchy.Group{Path: []string{string(rune('A' + i%3))}, Size: 0})
	}
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []estimator.Method{estimator.MethodHc, estimator.MethodHg} {
		opts := defaultOpts(43)
		opts.Methods = []estimator.Method{m}
		rel, err := TopDown(tree, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := rel.Check(tree); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestTopDownSingleHugeGroup covers the opposite extreme: one group
// holding everything (a single dormitory).
func TestTopDownSingleHugeGroup(t *testing.T) {
	groups := []hierarchy.Group{
		{Path: []string{"A"}, Size: 5000},
		{Path: []string{"B"}, Size: 1},
	}
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	opts := defaultOpts(44)
	opts.K = 10000
	opts.Epsilon = 2
	rel, err := TopDown(tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
	// The Hg-style strength: the huge group survives approximately.
	sizes := rel[tree.Root.Path].GroupSizes()
	if largest := sizes[len(sizes)-1]; largest < 4000 {
		t.Errorf("largest released group = %d, want near 5000", largest)
	}
}

// TestTopDownManyEmptyLeaves covers leaves that hold zero groups next to
// populated siblings.
func TestTopDownManyEmptyLeaves(t *testing.T) {
	groups := []hierarchy.Group{
		{Path: []string{"A", "a"}, Size: 2},
		{Path: []string{"A", "a"}, Size: 3},
		{Path: []string{"B", "b"}, Size: 1},
	}
	// Note: leaves "A/b" etc. simply do not exist; but a leaf with zero
	// groups can arise via dataset construction. Build one explicitly.
	tree, err := hierarchy.BuildTree("US", groups)
	if err != nil {
		t.Fatal(err)
	}
	// Inject an empty leaf under B.
	b := tree.ByLevel[1][1]
	empty := &hierarchy.Node{
		Name: "z", Path: b.Path + "/z", Level: 2, Parent: b, Hist: histogram.Hist{},
	}
	b.Children = append(b.Children, empty)
	tree.ByLevel[2] = append(tree.ByLevel[2], empty)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	rel, err := TopDown(tree, defaultOpts(45))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Check(tree); err != nil {
		t.Fatal(err)
	}
	if rel[empty.Path].Groups() != 0 {
		t.Errorf("empty leaf released %d groups", rel[empty.Path].Groups())
	}
}
