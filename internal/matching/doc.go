// Package matching implements Algorithm 2 of the paper: the optimal
// least-cost perfect matching between the groups of a parent node and the
// groups of its children, where the cost of matching parent group i to
// child group j is |parentSizes[i] - childSizes[j]|.
//
// Because both sides are sorted and the weights have this absolute-
// difference structure, a greedy smallest-vs-smallest sweep is optimal
// (Lemma 5) and runs in O(G log G) — versus O(G^3) for a generic
// assignment solver. Ties across children are split proportionally to
// the number of tied groups each child holds, with fractional shares
// resolved by largest-remainder rounding (footnote 10).
package matching
