package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcoc/internal/histogram"
)

func TestGreedy2ApproxIsPerfectMatching(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		children := []histogram.GroupSizes{
			sortedSizes(r, 1+r.Intn(10), 8),
			sortedSizes(r, 1+r.Intn(10), 8),
		}
		total := len(children[0]) + len(children[1])
		parent := sortedSizes(r, total, 8)
		ms, err := Greedy2Approx(parent, children)
		if err != nil {
			return false
		}
		used := make([]bool, len(parent))
		for ci := range children {
			for _, p := range ms[ci].ParentIndex {
				if p < 0 || used[p] {
					return false
				}
				used[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedy2ApproxRejectsMismatch(t *testing.T) {
	if _, err := Greedy2Approx(histogram.GroupSizes{1, 2}, []histogram.GroupSizes{{1}}); err == nil {
		t.Error("mismatched totals accepted")
	}
}

// TestAlgorithm2NeverWorseThanGreedy is the point of Lemma 5: the
// specialized sweep is optimal, so it can never lose to the generic
// 2-approximation.
func TestAlgorithm2NeverWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nChildren := 1 + r.Intn(3)
		children := make([]histogram.GroupSizes, nChildren)
		total := 0
		for i := range children {
			n := 1 + r.Intn(8)
			children[i] = sortedSizes(r, n, 10)
			total += n
		}
		parent := sortedSizes(r, total, 10)
		opt, err := Compute(parent, children)
		if err != nil {
			return false
		}
		greedy, err := Greedy2Approx(parent, children)
		if err != nil {
			return false
		}
		return Cost(parent, children, opt) <= Cost(parent, children, greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
