package matching

import (
	"math/rand"
	"testing"

	"hcoc/internal/histogram"
)

// splitRuns converts sorted sizes to runs, randomly splitting maximal
// runs so the coalescing path is exercised (the consistency layer
// splits runs by variance, producing adjacent equal-size runs).
func splitRuns(r *rand.Rand, sizes histogram.GroupSizes) []histogram.Run {
	var out []histogram.Run
	for _, s := range sizes {
		if n := len(out); n > 0 && out[n-1].Size == s && r.Intn(3) > 0 {
			out[n-1].Count++
		} else {
			out = append(out, histogram.Run{Size: s, Count: 1})
		}
	}
	return out
}

// expand turns per-child segments back into dense ParentIndex arrays.
func expand(children []histogram.GroupSizes, segs [][]Segment) []Match {
	out := make([]Match, len(children))
	for ci, c := range children {
		out[ci].ParentIndex = make([]int, len(c))
		for i := range out[ci].ParentIndex {
			out[ci].ParentIndex[i] = -1
		}
		for _, seg := range segs[ci] {
			for k := int64(0); k < seg.N; k++ {
				out[ci].ParentIndex[seg.Child+k] = int(seg.Parent + k)
			}
		}
	}
	return out
}

func randInstance(r *rand.Rand) (histogram.GroupSizes, []histogram.GroupSizes) {
	nChildren := 1 + r.Intn(5)
	children := make([]histogram.GroupSizes, nChildren)
	var all histogram.GroupSizes
	for i := range children {
		c := make(histogram.GroupSizes, r.Intn(40))
		for j := range c {
			c[j] = int64(r.Intn(12))
		}
		c.Sort()
		children[i] = c
		all = append(all, c...)
	}
	// The parent estimate differs from the children's but holds the
	// same number of groups (the public constraint).
	parent := all.Clone()
	for i := range parent {
		parent[i] += int64(r.Intn(5)) - 2
		if parent[i] < 0 {
			parent[i] = 0
		}
	}
	parent.Sort()
	return parent, children
}

// TestComputeRunsDifferential checks that ComputeRuns makes exactly the
// assignment Compute makes, over randomized instances including empty
// children and heavy ties.
func TestComputeRunsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		parent, children := randInstance(r)
		want, err := Compute(parent, children)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pRuns := splitRuns(r, parent)
		cRuns := make([][]histogram.Run, len(children))
		for i, c := range children {
			cRuns[i] = splitRuns(r, c)
		}
		segs, err := ComputeRuns(pRuns, cRuns)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := expand(children, segs)
		for ci := range children {
			for j, p := range want[ci].ParentIndex {
				if got[ci].ParentIndex[j] != p {
					t.Fatalf("trial %d child %d group %d: runs matched parent %d, dense matched %d",
						trial, ci, j, got[ci].ParentIndex[j], p)
				}
			}
		}
		if cw, cg := Cost(parent, children, want), CostRuns(pRuns, cRuns, segs); cw != cg {
			t.Fatalf("trial %d: CostRuns = %d, Cost = %d", trial, cg, cw)
		}
	}
}

func TestComputeRunsErrors(t *testing.T) {
	if _, err := ComputeRuns([]histogram.Run{{Size: 1, Count: 2}}, [][]histogram.Run{{{Size: 1, Count: 1}}}); err == nil {
		t.Fatal("ComputeRuns accepted mismatched group totals")
	}
	segs, err := ComputeRuns(nil, [][]histogram.Run{nil, nil})
	if err != nil {
		t.Fatalf("empty instance: %v", err)
	}
	for _, s := range segs {
		if len(s) != 0 {
			t.Fatalf("empty instance produced segments %v", segs)
		}
	}
}
