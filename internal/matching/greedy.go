package matching

import (
	"fmt"
	"sort"

	"hcoc/internal/histogram"
)

// Greedy2Approx is the well-known 2-approximation the paper mentions and
// rejects for scale: add edges in order of increasing weight, keeping
// those whose endpoints are both unmatched. On our bipartite instance it
// materializes all parent x child edges, so it is O(G^2 log G) time and
// O(G^2) memory — usable only on small instances. It exists to
// demonstrate (in tests and benchmarks) that Algorithm 2 is both optimal
// and asymptotically faster.
func Greedy2Approx(parent histogram.GroupSizes, children []histogram.GroupSizes) ([]Match, error) {
	var flat []int64
	var owner []int // child index of each flattened group
	var local []int // index within its child
	for ci, c := range children {
		for j, s := range c {
			flat = append(flat, s)
			owner = append(owner, ci)
			local = append(local, j)
		}
	}
	if len(flat) != len(parent) {
		return nil, fmt.Errorf("matching: children hold %d groups, parent holds %d", len(flat), len(parent))
	}
	type edge struct {
		w    int64
		p, f int
	}
	edges := make([]edge, 0, len(parent)*len(flat))
	for p, ps := range parent {
		for f, fs := range flat {
			w := ps - fs
			if w < 0 {
				w = -w
			}
			edges = append(edges, edge{w: w, p: p, f: f})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

	out := make([]Match, len(children))
	for i, c := range children {
		out[i].ParentIndex = make([]int, len(c))
		for j := range out[i].ParentIndex {
			out[i].ParentIndex[j] = -1
		}
	}
	usedP := make([]bool, len(parent))
	usedF := make([]bool, len(flat))
	matched := 0
	for _, e := range edges {
		if matched == len(flat) {
			break
		}
		if usedP[e.p] || usedF[e.f] {
			continue
		}
		usedP[e.p], usedF[e.f] = true, true
		out[owner[e.f]].ParentIndex[local[e.f]] = e.p
		matched++
	}
	return out, nil
}
