package matching

import (
	"fmt"

	"hcoc/internal/histogram"
	"hcoc/internal/simplex"
)

// Match describes the assignment for one child: ParentIndex[j] is the
// index (into the parent's sorted group-size array) of the parent group
// matched to the child's j-th smallest group.
type Match struct {
	ParentIndex []int
}

// Compute finds the optimal matching between the parent's sorted group
// sizes and the children's sorted group sizes. The total number of
// groups must agree (the group counts are public and consistent).
// Inputs must be sorted non-decreasing; they are not modified.
func Compute(parent histogram.GroupSizes, children []histogram.GroupSizes) ([]Match, error) {
	var childTotal int64
	for _, c := range children {
		childTotal += c.Groups()
	}
	if childTotal != parent.Groups() {
		return nil, fmt.Errorf("matching: children hold %d groups, parent holds %d", childTotal, parent.Groups())
	}
	out := make([]Match, len(children))
	cursors := make([]int, len(children)) // next unmatched index per child
	for i, c := range children {
		out[i].ParentIndex = make([]int, len(c))
		// Initialize to -1 so a missed assignment is detectable.
		for j := range out[i].ParentIndex {
			out[i].ParentIndex[j] = -1
		}
	}

	pi := 0 // next unmatched parent index
	for pi < len(parent) {
		// Gt: the run of parent groups with the minimal unmatched size.
		st := parent[pi]
		pEnd := pi + 1
		for pEnd < len(parent) && parent[pEnd] == st {
			pEnd++
		}
		nTop := pEnd - pi

		// Gb: across children, the groups with the minimal unmatched
		// size sb.
		var sb int64
		first := true
		for ci, c := range children {
			if cursors[ci] < len(c) {
				if first || c[cursors[ci]] < sb {
					sb = c[cursors[ci]]
					first = false
				}
			}
		}
		if first {
			return nil, fmt.Errorf("matching: ran out of child groups with %d parent groups left", len(parent)-pi)
		}
		// num[ci]: how many minimal-size groups child ci contributes.
		num := make([]int, len(children))
		nBot := 0
		for ci, c := range children {
			j := cursors[ci]
			for j < len(c) && c[j] == sb {
				j++
			}
			num[ci] = j - cursors[ci]
			nBot += num[ci]
		}

		if nTop >= nBot {
			// Every bottom group in Gb is matched now.
			idx := pi
			for ci := range children {
				for k := 0; k < num[ci]; k++ {
					out[ci].ParentIndex[cursors[ci]] = idx
					cursors[ci]++
					idx++
				}
			}
			pi += nBot
		} else {
			// Split the nTop parent groups across children
			// proportionally to num[ci] (footnote 10 rounding).
			quotas := make([]float64, len(children))
			for ci := range children {
				quotas[ci] = float64(nTop) * float64(num[ci]) / float64(nBot)
			}
			take := simplex.RoundPreservingSum(quotas, int64(nTop))
			idx := pi
			for ci := range children {
				for k := int64(0); k < take[ci]; k++ {
					out[ci].ParentIndex[cursors[ci]] = idx
					cursors[ci]++
					idx++
				}
			}
			pi = pEnd
		}
	}

	// Every child group must have been matched.
	for ci := range children {
		for j, p := range out[ci].ParentIndex {
			if p < 0 {
				return nil, fmt.Errorf("matching: child %d group %d unmatched", ci, j)
			}
		}
	}
	return out, nil
}

// Cost returns the total weight of a matching: the sum over all child
// groups of |parent size - child size|.
func Cost(parent histogram.GroupSizes, children []histogram.GroupSizes, ms []Match) int64 {
	var total int64
	for ci, c := range children {
		for j, p := range ms[ci].ParentIndex {
			d := parent[p] - c[j]
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	return total
}
