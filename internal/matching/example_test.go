package matching_test

import (
	"fmt"

	"hcoc/internal/histogram"
	"hcoc/internal/matching"
)

// A parent node estimated groups of sizes [1 2 9]; its two children
// estimated [1 8] and [3]. Algorithm 2 matches each child group to the
// parent group of closest size, optimally, in O(G log G).
func ExampleCompute() {
	parent := histogram.GroupSizes{1, 2, 9}
	children := []histogram.GroupSizes{{1, 8}, {3}}
	ms, err := matching.Compute(parent, children)
	if err != nil {
		panic(err)
	}
	for ci, m := range ms {
		for j, p := range m.ParentIndex {
			fmt.Printf("child %d group (size %d) <-> parent group (size %d)\n",
				ci, children[ci][j], parent[p])
		}
	}
	fmt.Println("total cost:", matching.Cost(parent, children, ms))
	// Output:
	// child 0 group (size 1) <-> parent group (size 1)
	// child 0 group (size 8) <-> parent group (size 9)
	// child 1 group (size 3) <-> parent group (size 2)
	// total cost: 2
}
