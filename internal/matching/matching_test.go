package matching

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"hcoc/internal/histogram"
)

// bruteForceCost computes the optimal assignment cost by bitmask DP over
// parent groups (exponential; only for small instances).
func bruteForceCost(parent histogram.GroupSizes, children []histogram.GroupSizes) int64 {
	var flat []int64
	for _, c := range children {
		flat = append(flat, c...)
	}
	n := len(parent)
	const inf = int64(1) << 60
	dp := make([]int64, 1<<n)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := 0; mask < 1<<n; mask++ {
		if dp[mask] == inf {
			continue
		}
		j := bits.OnesCount(uint(mask)) // next child group to assign
		if j >= len(flat) {
			continue
		}
		for p := 0; p < n; p++ {
			if mask&(1<<p) != 0 {
				continue
			}
			d := parent[p] - flat[j]
			if d < 0 {
				d = -d
			}
			next := mask | 1<<p
			if cost := dp[mask] + d; cost < dp[next] {
				dp[next] = cost
			}
		}
	}
	return dp[1<<n-1]
}

func sortedSizes(r *rand.Rand, n, maxSize int) histogram.GroupSizes {
	g := make(histogram.GroupSizes, n)
	for i := range g {
		g[i] = int64(r.Intn(maxSize))
	}
	g.Sort()
	return g
}

func TestComputeSimple(t *testing.T) {
	parent := histogram.GroupSizes{1, 2, 3}
	children := []histogram.GroupSizes{{1, 3}, {2}}
	ms, err := Compute(parent, children)
	if err != nil {
		t.Fatal(err)
	}
	if got := Cost(parent, children, ms); got != 0 {
		t.Errorf("cost = %d, want 0 (identical multisets)", got)
	}
}

func TestComputeRejectsMismatchedTotals(t *testing.T) {
	if _, err := Compute(histogram.GroupSizes{1, 2}, []histogram.GroupSizes{{1}}); err == nil {
		t.Error("mismatched totals accepted")
	}
}

func TestComputeIsPerfectMatching(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nChildren := 1 + r.Intn(4)
		children := make([]histogram.GroupSizes, nChildren)
		var all []int64
		for i := range children {
			children[i] = sortedSizes(r, r.Intn(20), 12)
			all = append(all, children[i]...)
		}
		if len(all) == 0 {
			return true
		}
		parent := histogram.GroupSizes(append([]int64(nil), all...))
		parent.Sort()
		ms, err := Compute(parent, children)
		if err != nil {
			return false
		}
		// Each parent index used exactly once.
		used := make([]bool, len(parent))
		for ci := range children {
			for _, p := range ms[ci].ParentIndex {
				if p < 0 || p >= len(parent) || used[p] {
					return false
				}
				used[p] = true
			}
		}
		for _, u := range used {
			if !u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeMatchesBruteForceOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nChildren := 1 + r.Intn(3)
		children := make([]histogram.GroupSizes, nChildren)
		total := 0
		for i := range children {
			n := r.Intn(5)
			if total+n > 10 {
				n = 10 - total
			}
			total += n
			children[i] = sortedSizes(r, n, 8)
		}
		if total == 0 {
			continue
		}
		// The parent sizes are an independent estimate: same count,
		// possibly different sizes (that is the hierarchical setting).
		parent := sortedSizes(r, total, 8)
		ms, err := Compute(parent, children)
		if err != nil {
			t.Fatal(err)
		}
		got := Cost(parent, children, ms)
		want := bruteForceCost(parent, children)
		if got != want {
			t.Fatalf("trial %d: greedy cost %d, optimal %d\nparent=%v children=%v",
				trial, got, want, parent, children)
		}
	}
}

func TestComputeIdenticalEstimatesZeroCost(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nChildren := 1 + r.Intn(4)
		children := make([]histogram.GroupSizes, nChildren)
		var all []int64
		for i := range children {
			children[i] = sortedSizes(r, 1+r.Intn(15), 10)
			all = append(all, children[i]...)
		}
		parent := histogram.GroupSizes(all)
		parent.Sort()
		ms, err := Compute(parent, children)
		if err != nil {
			return false
		}
		return Cost(parent, children, ms) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportionalSplitExample(t *testing.T) {
	// Paper's example: parent has 300 groups of size 1; children have
	// 200+100+100 = 400 groups of size 1. The 300 parent groups are
	// split 150/75/75.
	parent := make(histogram.GroupSizes, 300)
	for i := range parent {
		parent[i] = 1
	}
	mk := func(n int) histogram.GroupSizes {
		c := make(histogram.GroupSizes, n)
		for i := range c {
			c[i] = 1
		}
		return c
	}
	// Give the children extra larger groups so totals match: children
	// must hold 300 groups total in a perfect matching; instead check
	// the proportional behaviour via a mixed instance: 100 extra parent
	// groups of size 2 absorb the leftover children.
	parent = append(parent, make(histogram.GroupSizes, 100)...)
	for i := 300; i < 400; i++ {
		parent[i] = 2
	}
	children := []histogram.GroupSizes{mk(200), mk(100), mk(100)}
	ms, err := Compute(parent, children)
	if err != nil {
		t.Fatal(err)
	}
	// The first 300 parent groups (size 1) should be distributed
	// 150/75/75 across the children's size-1 groups; the rest match to
	// size-2 parents at cost 1 each -> total cost 100.
	if got := Cost(parent, children, ms); got != 100 {
		t.Errorf("cost = %d, want 100", got)
	}
	counts := make([]int, 3)
	for ci := range children {
		for _, p := range ms[ci].ParentIndex {
			if parent[p] == 1 {
				counts[ci]++
			}
		}
	}
	if counts[0] != 150 || counts[1] != 75 || counts[2] != 75 {
		t.Errorf("size-1 split = %v, want [150 75 75]", counts)
	}
}

func TestMonotoneWithinChild(t *testing.T) {
	// Because child groups are consumed in sorted order against
	// non-decreasing parent runs, each child's parent indices must be
	// strictly increasing (a fresh parent group per child group).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		children := []histogram.GroupSizes{
			sortedSizes(r, 1+r.Intn(15), 6),
			sortedSizes(r, 1+r.Intn(15), 6),
		}
		total := len(children[0]) + len(children[1])
		parent := sortedSizes(r, total, 6)
		ms, err := Compute(parent, children)
		if err != nil {
			return false
		}
		for ci := range children {
			prev := -1
			for _, p := range ms[ci].ParentIndex {
				if p <= prev {
					return false
				}
				prev = p
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
