package matching

import (
	"fmt"

	"hcoc/internal/histogram"
	"hcoc/internal/simplex"
)

// Segment is the run-length form of a matching: the N consecutive child
// groups starting at child rank Child are matched, in order, to the N
// consecutive parent groups starting at parent rank Parent. Ranks index
// the sorted group-size lists exactly as Match.ParentIndex does.
type Segment struct {
	Child, Parent, N int64
}

// runCursor walks a run-length group-size list group by group without
// expanding it.
type runCursor struct {
	runs []histogram.Run
	run  int   // current run
	off  int64 // groups consumed within the current run
	idx  int64 // global rank of the next unconsumed group
}

// done reports whether every group has been consumed.
func (c *runCursor) done() bool { return c.run >= len(c.runs) }

// size returns the size of the next unconsumed group.
func (c *runCursor) size() int64 { return c.runs[c.run].Size }

// sameSize returns how many consecutive unconsumed groups share the
// next group's size, coalescing adjacent runs of equal size (callers
// may split runs by auxiliary data such as variance).
func (c *runCursor) sameSize() int64 {
	s := c.runs[c.run].Size
	n := c.runs[c.run].Count - c.off
	for r := c.run + 1; r < len(c.runs) && c.runs[r].Size == s; r++ {
		n += c.runs[r].Count
	}
	return n
}

// advance consumes n groups.
func (c *runCursor) advance(n int64) {
	c.idx += n
	c.off += n
	for c.run < len(c.runs) && c.off >= c.runs[c.run].Count {
		c.off -= c.runs[c.run].Count
		c.run++
	}
}

// remaining returns the number of unconsumed groups.
func (c *runCursor) remaining() int64 {
	var n int64
	for r := c.run; r < len(c.runs); r++ {
		n += c.runs[r].Count
	}
	return n - c.off
}

// ComputeRuns is Compute over run-length inputs: parent and children
// are group-size lists given as runs with non-decreasing sizes and
// positive counts (adjacent runs may share a size; they are coalesced
// during the sweep). It performs exactly the assignment Compute makes
// on the expanded lists, but in time and space proportional to the
// number of runs rather than the number of groups, returning per-child
// segment lists ordered by child rank.
func ComputeRuns(parent []histogram.Run, children [][]histogram.Run) ([][]Segment, error) {
	p := runCursor{runs: parent}
	cs := make([]runCursor, len(children))
	var childTotal int64
	for i, c := range children {
		cs[i] = runCursor{runs: c}
		childTotal += cs[i].remaining()
	}
	if pt := p.remaining(); childTotal != pt {
		return nil, fmt.Errorf("matching: children hold %d groups, parent holds %d", childTotal, pt)
	}

	out := make([][]Segment, len(children))
	num := make([]int64, len(children))
	for !p.done() {
		// Gt: the run of parent groups with the minimal unmatched size.
		nTop := p.sameSize()

		// Gb: across children, the groups with the minimal unmatched
		// size sb.
		var sb int64
		first := true
		for ci := range cs {
			if !cs[ci].done() {
				if s := cs[ci].size(); first || s < sb {
					sb = s
					first = false
				}
			}
		}
		if first {
			return nil, fmt.Errorf("matching: ran out of child groups with %d parent groups left", p.remaining())
		}
		var nBot int64
		for ci := range cs {
			num[ci] = 0
			if !cs[ci].done() && cs[ci].size() == sb {
				num[ci] = cs[ci].sameSize()
			}
			nBot += num[ci]
		}

		if nTop >= nBot {
			// Every bottom group in Gb is matched now.
			idx := p.idx
			for ci := range cs {
				if num[ci] > 0 {
					out[ci] = append(out[ci], Segment{Child: cs[ci].idx, Parent: idx, N: num[ci]})
					cs[ci].advance(num[ci])
					idx += num[ci]
				}
			}
			p.advance(nBot)
		} else {
			// Split the nTop parent groups across children
			// proportionally to num[ci] (footnote 10 rounding).
			quotas := make([]float64, len(children))
			for ci := range cs {
				quotas[ci] = float64(nTop) * float64(num[ci]) / float64(nBot)
			}
			take := simplex.RoundPreservingSum(quotas, nTop)
			idx := p.idx
			for ci := range cs {
				if take[ci] > 0 {
					out[ci] = append(out[ci], Segment{Child: cs[ci].idx, Parent: idx, N: take[ci]})
					cs[ci].advance(take[ci])
					idx += take[ci]
				}
			}
			p.advance(nTop)
		}
	}

	// Every child group must have been matched.
	for ci := range cs {
		if !cs[ci].done() {
			return nil, fmt.Errorf("matching: child %d group %d unmatched", ci, cs[ci].idx)
		}
	}
	return out, nil
}

// CostRuns returns the total weight of a segment matching: the sum over
// all matched pairs of |parent size - child size|, computed per
// (child-run x parent-run) overlap instead of per group.
func CostRuns(parent []histogram.Run, children [][]histogram.Run, segs [][]Segment) int64 {
	// Parent rank -> size lookup by prefix offsets.
	offs := make([]int64, len(parent)+1)
	for i, r := range parent {
		offs[i+1] = offs[i] + r.Count
	}
	var total int64
	for ci, c := range children {
		cur := runCursor{runs: c}
		pr := 0
		for _, seg := range segs[ci] {
			// Segments are child-rank ordered; parent starts are
			// non-decreasing too, so pr only moves forward.
			pIdx := seg.Parent
			for n := seg.N; n > 0; {
				for offs[pr+1] <= pIdx {
					pr++
				}
				m := n
				if left := offs[pr+1] - pIdx; left < m {
					m = left
				}
				if left := cur.runs[cur.run].Count - cur.off; left < m {
					m = left
				}
				d := parent[pr].Size - cur.size()
				if d < 0 {
					d = -d
				}
				total += d * m
				cur.advance(m)
				pIdx += m
				n -= m
			}
		}
	}
	return total
}
