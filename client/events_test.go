package client_test

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/engine"
)

// TestClientEvents drives the event-sourcing surface through the SDK
// against the real server: delta appends with and without If-Match,
// the version listing, version-pinned releases, and the typed conflict
// error.
func TestClientEvents(t *testing.T) {
	ts := newDaemon(t, engine.Options{})
	c := newClient(t, ts.URL, client.WithUserAgent("events-test"),
		client.WithHTTPClient(http.DefaultClient))
	ctx := context.Background()

	h, err := c.UploadHierarchy(ctx, "US", testGroups())
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if h.Version != 1 || h.Fingerprint == "" {
		t.Fatalf("snapshot = version %d fingerprint %q", h.Version, h.Fingerprint)
	}

	// A conditioned delta lands on the head it expected.
	res, err := c.AppendEvents(ctx, h.ID, []client.Event{
		client.DeltaEvent([]client.EventGroup{{Path: []string{"OR"}, Size: 2}}, nil,
			[]client.EventDrift{{Path: []string{"CA"}, From: 1, To: 2, Count: 1}}),
	}, h.Fingerprint)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if res.Hierarchy != h.ID || res.Applied != 1 || res.Head.Version != 2 || res.Head.Type != "delta" {
		t.Fatalf("append result = %+v", res)
	}

	// A stale precondition is the typed conflict, nothing applied.
	_, err = c.AppendEvents(ctx, h.ID, []client.Event{
		client.DeltaEvent([]client.EventGroup{{Path: []string{"NV"}, Size: 1}}, nil, nil),
	}, h.Fingerprint)
	var conflict *client.VersionConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("stale append error = %v, want *VersionConflictError", err)
	}
	if conflict.Hierarchy != h.ID || conflict.HeadVersion != 2 ||
		conflict.HeadFingerprint != res.Head.Fingerprint || conflict.Given != h.Fingerprint {
		t.Fatalf("conflict = %+v", conflict)
	}
	if msg := conflict.Error(); !strings.Contains(msg, res.Head.Fingerprint) {
		t.Fatalf("conflict message %q does not name the head", msg)
	}

	// A snapshot event rebases the whole hierarchy: version 3.
	if _, err := c.AppendEvents(ctx, h.ID, []client.Event{
		client.SnapshotEvent("US", []hcoc.Group{{Path: []string{"ID"}, Size: 4}}),
	}, ""); err != nil {
		t.Fatalf("snapshot append: %v", err)
	}

	versions, err := c.HierarchyVersions(ctx, h.ID)
	if err != nil {
		t.Fatalf("versions: %v", err)
	}
	if len(versions) != 3 {
		t.Fatalf("listed %d versions, want 3", len(versions))
	}
	for i, want := range []string{"snapshot", "delta", "snapshot"} {
		if versions[i].Version != int64(i+1) || versions[i].Type != want || versions[i].Fingerprint == "" {
			t.Fatalf("version %d = %+v, want seq %d type %q", i, versions[i], i+1, want)
		}
	}

	// Releases pin immutable versions; the budget breaks spend down by
	// version.
	rel1, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Version: 1, Epsilon: 1, K: 50, Seed: 7})
	if err != nil {
		t.Fatalf("pinned release: %v", err)
	}
	if rel1.Version != 1 || rel1.Fingerprint != h.Fingerprint || rel1.Incremental {
		t.Fatalf("pinned release = %+v", rel1)
	}
	head, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 1, K: 50, Seed: 7})
	if err != nil {
		t.Fatalf("head release: %v", err)
	}
	if head.Version != 3 || head.Release == rel1.Release {
		t.Fatalf("head release = %+v, want version 3 under a new key", head)
	}
	budget, err := c.Budget(ctx, h.ID)
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	if len(budget.Versions) != 3 || budget.Versions[0].SpentEpsilon != 1 || budget.Versions[2].SpentEpsilon != 1 {
		t.Fatalf("budget versions = %+v", budget.Versions)
	}

	// Unknown hierarchies surface as typed 404s on both endpoints.
	if _, err := c.HierarchyVersions(ctx, "h-missing"); err == nil {
		t.Fatal("versions of unknown hierarchy succeeded")
	}
	var ae *client.APIError
	_, err = c.AppendEvents(ctx, "h-missing", []client.Event{
		client.DeltaEvent([]client.EventGroup{{Path: []string{"X"}, Size: 1}}, nil, nil),
	}, "")
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound || ae.Code != "not_found" {
		t.Fatalf("append to unknown hierarchy = %v", err)
	}
}
