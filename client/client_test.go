package client_test

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/engine"
	"hcoc/internal/serve"
)

// newDaemon runs the real serving stack in-process.
func newDaemon(t *testing.T, opts engine.Options) *httptest.Server {
	t.Helper()
	srv, err := serve.NewServer(engine.New(opts), opts.Store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func newClient(t *testing.T, url string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.New(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testGroups() []hcoc.Group {
	var groups []hcoc.Group
	for i := 0; i < 40; i++ {
		groups = append(groups, hcoc.Group{Path: []string{"CA"}, Size: int64(i%5 + 1)})
		groups = append(groups, hcoc.Group{Path: []string{"WA"}, Size: int64(i%3 + 1)})
	}
	return groups
}

// TestClientEndToEnd drives every endpoint through the SDK against the
// real server: upload, list, sync release, single and batch queries,
// artifact downloads in both formats, budget, async job, health,
// metrics.
func TestClientEndToEnd(t *testing.T) {
	ts := newDaemon(t, engine.Options{MaxEpsilonPerHierarchy: 10})
	c := newClient(t, ts.URL)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	h, err := c.UploadHierarchy(ctx, "US", testGroups())
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if h.Depth != 2 || h.Groups != 80 {
		t.Fatalf("hierarchy: %+v", h)
	}
	listed, err := c.Hierarchies(ctx)
	if err != nil || len(listed) != 1 || listed[0].ID != h.ID {
		t.Fatalf("hierarchies: %+v, %v", listed, err)
	}

	rel, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 1, K: 50, Seed: 7})
	if err != nil {
		t.Fatalf("release: %v", err)
	}
	if rel.Nodes != 3 || rel.CacheHit {
		t.Fatalf("release: %+v", rel)
	}

	// Single query and batch query must agree.
	single, err := c.Query(ctx, rel.Release, "US/CA", client.QueryParams{Quantiles: []float64{0.5, 0.9}, TopCode: 6})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	batch, err := c.BatchQuery(ctx, rel.Release, []client.NodeQuery{
		{Node: "US/CA", Quantiles: []float64{0.5, 0.9}, TopCode: 6},
		{Node: "US/??"},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if batch[0].Error != "" || batch[1].Error == "" {
		t.Fatalf("batch errors: %+v", batch)
	}
	a, _ := json.Marshal(single)
	b, _ := json.Marshal(batch[0].NodeReport)
	if string(a) != string(b) {
		t.Fatalf("single %s != batch %s", a, b)
	}

	// Downloads in both formats decode to the same histograms.
	sparse, eps, err := c.DownloadRelease(ctx, rel.Release)
	if err != nil || eps != 1 {
		t.Fatalf("download sparse: %v (eps %g)", err, eps)
	}
	dense, _, err := c.DownloadReleaseDense(ctx, rel.Release)
	if err != nil {
		t.Fatalf("download dense: %v", err)
	}
	if len(sparse) != len(dense) {
		t.Fatalf("sparse has %d nodes, dense %d", len(sparse), len(dense))
	}
	for node, s := range sparse {
		if hcoc.EMD(s.Hist(), dense[node]) != 0 {
			t.Fatalf("node %s: sparse and dense artifacts differ", node)
		}
	}

	bud, err := c.Budget(ctx, h.ID)
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	if !bud.Enforced || bud.SpentEpsilon != 1 || bud.RemainingEpsilon != 9 {
		t.Fatalf("budget: %+v", bud)
	}

	// Async: submit, wait, query the produced release.
	job, err := c.ReleaseAsync(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 1, K: 50, Seed: 8})
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if job.Finished() {
		t.Fatalf("fresh job already terminal: %+v", job)
	}
	done, err := c.WaitJob(ctx, job.Job, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if done.Status != "done" || done.Release == "" {
		t.Fatalf("job: %+v", done)
	}
	if _, err := c.Query(ctx, done.Release, "US", client.QueryParams{}); err != nil {
		t.Fatalf("query async release: %v", err)
	}

	// Durable listing is empty without a store — but succeeds.
	arts, err := c.Releases(ctx)
	if err != nil || len(arts) != 0 {
		t.Fatalf("releases: %+v, %v", arts, err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "hcoc_releases_total") {
		t.Fatalf("metrics: %v", err)
	}

	// The QoS report knows this hierarchy as a tenant by now.
	qos, err := c.Tenants(ctx)
	if err != nil {
		t.Fatalf("tenants: %v", err)
	}
	if qos.ComputeSlots < 1 || qos.Reads == 0 {
		t.Fatalf("tenants pool: %+v", qos)
	}
	if len(qos.Tenants) != 1 || qos.Tenants[0].Tenant != h.ID {
		t.Fatalf("tenants list: %+v, want just %s", qos.Tenants, h.ID)
	}
	if ten := qos.Tenants[0]; ten.Weight != 1 || ten.Requests == 0 || ten.Computed == 0 {
		t.Fatalf("tenant ledger: %+v", ten)
	}

	if _, err := c.Query(ctx, "r-missing", "US", client.QueryParams{}); !client.IsNotFound(err) {
		t.Fatalf("missing release: %v, want 404", err)
	}
}

// TestClientRetry503 verifies backpressure handling: 503 responses are
// retried with backoff until the server recovers, and a Retry-After
// header is honored.
func TestClientRetry503(t *testing.T) {
	var attempts atomic.Int32
	var sawRetryAfterGap atomic.Bool
	var last atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && now-prev >= int64(time.Second) {
			sawRetryAfterGap.Store(true)
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"too many active jobs"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"job":"j-1","status":"queued"}`))
	}))
	defer stub.Close()

	// Max backoff sits above the server's Retry-After so the header is
	// honored (the cap, tested separately, would otherwise clamp it).
	c := newClient(t, stub.URL, client.WithBackoff(time.Millisecond, 2*time.Second))
	job, err := c.ReleaseAsync(context.Background(), client.ReleaseRequest{Hierarchy: "h-x", Epsilon: 1})
	if err != nil {
		t.Fatalf("expected recovery, got %v", err)
	}
	if job.Job != "j-1" {
		t.Fatalf("job: %+v", job)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if !sawRetryAfterGap.Load() {
		t.Fatal("Retry-After: 1 was not honored (retries came back faster than 1s)")
	}
}

// TestClientRetryAfterCapped: a server-supplied Retry-After cannot
// stall the client past its configured maximum backoff.
func TestClientRetryAfterCapped(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "3600")
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer stub.Close()

	c := newClient(t, stub.URL, client.WithMaxRetries(2), client.WithBackoff(time.Millisecond, 20*time.Millisecond))
	start := time.Now()
	err := c.Healthz(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retries took %v; Retry-After was not capped at the 20ms max backoff", elapsed)
	}
}

// TestClientRetriesExhausted: a server that never recovers surfaces the
// final *APIError after the configured number of retries.
func TestClientRetriesExhausted(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"still overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer stub.Close()

	c := newClient(t, stub.URL, client.WithMaxRetries(2), client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Release(context.Background(), client.ReleaseRequest{Hierarchy: "h-x", Epsilon: 1})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := attempts.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestClientBudgetRefusalNotRetried: a 429 carrying the machine-readable
// budget body is terminal — exactly one attempt, a typed *BudgetError
// with the remaining budget.
func TestClientBudgetRefusalNotRetried(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"would exceed budget","hierarchy":"h-abc",
			"requested_epsilon":1,"remaining_epsilon":0.25,"max_epsilon_per_hierarchy":2}`))
	}))
	defer stub.Close()

	c := newClient(t, stub.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Release(context.Background(), client.ReleaseRequest{Hierarchy: "h-abc", Epsilon: 1})
	var be *client.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if be.Hierarchy != "h-abc" || be.RemainingEpsilon != 0.25 || be.MaxEpsilonPerHierarchy != 2 || be.RequestedEpsilon != 1 {
		t.Fatalf("budget error fields: %+v", be)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (budget refusals must not be retried)", got)
	}
}

// TestClientGeneric429Retried: a 429 without the budget body (a rate
// limiter, a proxy) is backpressure and is retried.
func TestClientGeneric429Retried(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			http.Error(w, `{"error":"slow down"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer stub.Close()

	c := newClient(t, stub.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("expected recovery, got %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

// TestClientCancellationMidRetry: canceling the context while the
// client is backing off aborts promptly with the context error, not
// after the full backoff schedule.
func TestClientCancellationMidRetry(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer stub.Close()

	c := newClient(t, stub.URL)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: "h-x", Epsilon: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the 30s Retry-After was not interrupted", elapsed)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled during the first backoff)", got)
	}
}

// TestClientCancellationNoRetryAfterwards: a request whose context ends
// mid-flight is not retried.
func TestClientCancellationNoRetryAfterwards(t *testing.T) {
	var attempts atomic.Int32
	block := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		<-block
	}))
	defer stub.Close()
	defer close(block)

	c := newClient(t, stub.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.Healthz(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestClientDecodeFailureNotRetried: a 2xx whose body does not decode
// is a deterministic failure — one attempt, no backoff.
func TestClientDecodeFailureNotRetried(t *testing.T) {
	var attempts atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"job": truncated`))
	}))
	defer stub.Close()

	c := newClient(t, stub.URL, client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	if _, err := c.Job(context.Background(), "j-1"); err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Fatalf("err = %v, want decode failure", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (decode failures must not be retried)", got)
	}
}

// TestClientGzipRequestBodies: large POST bodies arrive gzip-compressed
// and decode server-side; the real server handles them transparently.
func TestClientGzipRequestBodies(t *testing.T) {
	var sawGzip atomic.Bool
	var decoded atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := r.Body
		if r.Header.Get("Content-Encoding") == "gzip" {
			sawGzip.Store(true)
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				t.Errorf("bad gzip body: %v", err)
			}
			body = zr
		}
		n, _ := io.Copy(io.Discard, body)
		decoded.Add(n)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"h-1"}`))
	}))
	defer stub.Close()

	c := newClient(t, stub.URL)
	if _, err := c.UploadHierarchy(context.Background(), "US", testGroups()); err != nil {
		t.Fatal(err)
	}
	if !sawGzip.Load() {
		t.Fatal("large upload was not gzip-compressed")
	}
	if decoded.Load() < 1024 {
		t.Fatalf("decompressed only %d bytes", decoded.Load())
	}

	// And with compression disabled, the body arrives plain.
	sawGzip.Store(false)
	c2 := newClient(t, stub.URL, client.WithoutRequestCompression())
	if _, err := c2.UploadHierarchy(context.Background(), "US", testGroups()); err != nil {
		t.Fatal(err)
	}
	if sawGzip.Load() {
		t.Fatal("compression was not disabled")
	}
}
