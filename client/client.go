package client

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Default transport tuning. Every knob has an Option.
const (
	// DefaultMaxRetries is how many times a retryable request (429
	// without a budget refusal, 503, transport error) is retried after
	// its first attempt.
	DefaultMaxRetries = 4
	// DefaultBackoff is the first retry delay; it doubles per attempt.
	DefaultBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the growing retry delay.
	DefaultMaxBackoff = 5 * time.Second
	// gzipThreshold is the request-body size above which the client
	// compresses POST bodies. Hierarchy uploads are highly repetitive
	// JSON and typically shrink 10-20x; tiny bodies are not worth the
	// header overhead.
	gzipThreshold = 1 << 10
)

// Client is a typed HTTP client for an hcoc-serve daemon. It covers
// every /v1 endpoint, retries backpressure responses with exponential
// backoff (honoring Retry-After), compresses large request bodies, and
// threads a context through every call. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base       *url.URL
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	maxBackoff time.Duration
	noGzip     bool
	userAgent  string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports, timeouts, or test doubles). The default is a dedicated
// client with a 5-minute overall timeout — releases can run long.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds retries per request after the first attempt;
// 0 disables retrying entirely.
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the initial and maximum retry delay. The delay
// doubles per attempt from initial up to max; a server Retry-After
// overrides the computed delay.
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = initial, max }
}

// WithoutRequestCompression disables gzip-compressing large request
// bodies (the response side is negotiated by the transport regardless).
func WithoutRequestCompression() Option { return func(c *Client) { c.noGzip = true } }

// WithUserAgent sets the User-Agent header sent with every request.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// New creates a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base:       u,
		hc:         &http.Client{Timeout: 5 * time.Minute},
		maxRetries: DefaultMaxRetries,
		backoff:    DefaultBackoff,
		maxBackoff: DefaultMaxBackoff,
		userAgent:  "hcoc-client/1",
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// APIError is a non-2xx daemon response that is not a budget or
// version-conflict refusal: the HTTP status plus the server's error
// message and machine-readable code.
type APIError struct {
	// StatusCode is the HTTP status of the refusing response.
	StatusCode int
	// Code is the server's machine-readable error code ("bad_request",
	// "not_found", "rate_limited", ...). Empty against pre-code daemons.
	Code string
	// Message is the server's error text.
	Message string
	// RetryAfter is the server-suggested retry delay, when one was sent.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether retrying the same request may succeed
// (backpressure statuses: 429, 503). The client's own retry loop uses
// the same predicate.
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// BudgetError is the daemon's 429 refusal of a release that would
// exceed its hierarchy's privacy budget. It is terminal, never retried:
// the budget does not replenish by waiting.
type BudgetError struct {
	// Hierarchy is the id whose budget is exhausted.
	Hierarchy string
	// Code distinguishes the per-version bound ("budget") from the
	// cross-version continual-observation bound ("continual_budget").
	// Empty against pre-code daemons.
	Code string
	// RequestedEpsilon is what the refused release asked for.
	RequestedEpsilon float64
	// RemainingEpsilon is what the hierarchy can still afford.
	RemainingEpsilon float64
	// MaxEpsilonPerHierarchy is the daemon's configured bound.
	MaxEpsilonPerHierarchy float64
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("client: privacy budget refused: %s (remaining %g of %g)",
		e.Message, e.RemainingEpsilon, e.MaxEpsilonPerHierarchy)
}

// VersionConflictError is the daemon's 409 refusal of a conditional
// event append: the If-Match fingerprint was no longer the head — a
// concurrent writer won. Re-read the head (the error carries it),
// rebase the delta, and retry explicitly; the client never retries a
// conflict on its own.
type VersionConflictError struct {
	// Hierarchy is the log the append targeted.
	Hierarchy string
	// HeadVersion and HeadFingerprint identify the current head to
	// rebase onto.
	HeadVersion     int64
	HeadFingerprint string
	// Given is the stale fingerprint the caller sent.
	Given string
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *VersionConflictError) Error() string {
	return fmt.Sprintf("client: version conflict on %s: head is version %d (%s), not %s",
		e.Hierarchy, e.HeadVersion, e.HeadFingerprint, e.Given)
}

// transportError marks a failure below the HTTP layer (dial, TLS,
// connection reset) — the class where a fresh attempt can genuinely
// succeed. Deterministic failures (a 2xx body that does not decode, a
// malformed artifact) deliberately do not get this wrapper and are
// never retried.
type transportError struct{ err error }

// Error implements error.
func (e *transportError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *transportError) Unwrap() error { return e.err }

// retryable reports whether another attempt may help: transport errors
// and backpressure statuses, but never context ends, budget refusals,
// deterministic decode failures, or client/server bugs (4xx/5xx
// otherwise).
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var be *BudgetError
	if errors.As(err, &be) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Temporary()
	}
	var te *transportError
	return errors.As(err, &te)
}

// do runs one API call with retries: method+path against the base URL,
// an optional JSON body, an optional JSON out. Bodies are marshaled
// once and replayed per attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doHeaders(ctx, method, path, in, out, nil)
}

// doHeaders is do with extra request headers (If-Match preconditions).
func (c *Client) doHeaders(ctx context.Context, method, path string, in, out any, hdr map[string]string) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.attempt(ctx, func() error {
		return c.once(ctx, method, path, body, out, hdr)
	})
}

// attempt drives one request through the retry loop: run once, back
// off on retryable failures (interruptible by the context), give up on
// terminal ones or when the retry budget is spent.
func (c *Client) attempt(ctx context.Context, once func() error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := once()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || attempt >= c.maxRetries {
			return lastErr
		}
		timer := time.NewTimer(c.delay(attempt, err))
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("client: %w while backing off (last error: %v)", ctx.Err(), lastErr)
		case <-timer.C:
		}
	}
}

// delay computes the wait before retry number attempt+1: exponential
// from the configured base, overridden by a server Retry-After. Both
// are capped at the configured maximum — a misbehaving server must not
// be able to stall a caller for an arbitrary Retry-After.
func (c *Client) delay(attempt int, err error) time.Duration {
	d := c.backoff << attempt
	if d > c.maxBackoff || d <= 0 { // <= 0: shift overflow
		d = c.maxBackoff
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		d = ae.RetryAfter
		if d > c.maxBackoff {
			d = c.maxBackoff
		}
	}
	return d
}

// once is a single request/response cycle. path is joined to the base
// URL verbatim, so callers control its escaping.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, hdr map[string]string) error {
	u := strings.TrimSuffix(c.base.String(), "/") + path

	var rd io.Reader
	gzipped := false
	if body != nil {
		if !c.noGzip && len(body) >= gzipThreshold {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			if _, err := zw.Write(body); err == nil && zw.Close() == nil {
				rd, gzipped = &buf, true
			} else {
				rd = bytes.NewReader(body)
			}
		} else {
			rd = bytes.NewReader(body)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		if gzipped {
			req.Header.Set("Content-Encoding", "gzip")
		}
	}
	req.Header.Set("User-Agent", c.userAgent)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}

	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface the context end itself so callers (and the retry
		// predicate) see context.Canceled/DeadlineExceeded.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("client: %w", ctxErr)
		}
		return fmt.Errorf("client: %s %s: %w", method, path, &transportError{err})
	}
	defer resp.Body.Close()

	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return c.responseError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// responseError converts a non-2xx response into the matching typed
// error: *BudgetError for a budget refusal, *VersionConflictError for a
// failed If-Match append, *APIError otherwise. The server's
// machine-readable code drives the mapping when present; the legacy
// shape heuristics (a 429 carrying budget fields) keep working against
// pre-code daemons.
func (c *Client) responseError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var body struct {
		Error                  string  `json:"error"`
		Code                   string  `json:"code"`
		Hierarchy              string  `json:"hierarchy"`
		RequestedEpsilon       float64 `json:"requested_epsilon"`
		RemainingEpsilon       float64 `json:"remaining_epsilon"`
		MaxEpsilonPerHierarchy float64 `json:"max_epsilon_per_hierarchy"`
		HeadVersion            int64   `json:"head_version"`
		HeadFingerprint        string  `json:"head_fingerprint"`
		Given                  string  `json:"given"`
	}
	message := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		message = body.Error
		switch {
		case body.Code == "budget" || body.Code == "continual_budget",
			body.Code == "" && resp.StatusCode == http.StatusTooManyRequests &&
				body.Hierarchy != "" && body.MaxEpsilonPerHierarchy > 0:
			return &BudgetError{
				Hierarchy:              body.Hierarchy,
				Code:                   body.Code,
				RequestedEpsilon:       body.RequestedEpsilon,
				RemainingEpsilon:       body.RemainingEpsilon,
				MaxEpsilonPerHierarchy: body.MaxEpsilonPerHierarchy,
				Message:                body.Error,
			}
		case body.Code == "version_conflict" && resp.StatusCode == http.StatusConflict:
			return &VersionConflictError{
				Hierarchy:       body.Hierarchy,
				HeadVersion:     body.HeadVersion,
				HeadFingerprint: body.HeadFingerprint,
				Given:           body.Given,
				Message:         body.Error,
			}
		}
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Code:       body.Code,
		Message:    message,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After; the
// HTTP-date form (rare from APIs) falls back to zero, i.e. the client's
// own backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}
