package client_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/engine"
	"hcoc/internal/serve"
)

// Example walks the whole consumption loop against an in-process
// daemon: upload a hierarchy, compute a seeded release, then answer
// several node questions in one batch round trip.
func Example() {
	// Stand up the daemon in-process; in production this is a running
	// hcoc-serve and New takes its URL.
	srv, err := serve.NewServer(engine.New(engine.Options{}), nil)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// One group record per household: its leaf region and its size.
	var groups []hcoc.Group
	for i := 0; i < 30; i++ {
		groups = append(groups, hcoc.Group{Path: []string{"CA"}, Size: int64(i%4 + 1)})
		groups = append(groups, hcoc.Group{Path: []string{"WA"}, Size: int64(i%2 + 1)})
	}
	h, err := c.UploadHierarchy(ctx, "US", groups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d groups across %d nodes\n", h.Groups, h.Nodes)

	// A seeded release is reproducible; epsilon is the privacy budget.
	rel, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 5, K: 50, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// N post-processing questions, one round trip, one engine pass.
	results, err := c.BatchQuery(ctx, rel.Release, []client.NodeQuery{
		{Node: "US", Quantiles: []float64{0.5}},
		{Node: "US/CA", Quantiles: []float64{0.5}},
		{Node: "US/WA", Quantiles: []float64{0.5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s: %d groups, median size %d\n", r.Node, r.Groups, r.Median)
	}

	// Output:
	// uploaded 60 groups across 3 nodes
	// US: 60 groups, median size 2
	// US/CA: 30 groups, median size 2
	// US/WA: 30 groups, median size 1
}
