package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"hcoc"
)

// Hierarchy describes a hierarchy (an event log) at its head version,
// as returned by UploadHierarchy and Hierarchies.
type Hierarchy struct {
	// ID addresses the hierarchy in release requests ("h-<fingerprint>").
	ID string `json:"id"`
	// Depth, Nodes, Groups and People summarize the head tree.
	Depth  int   `json:"depth"`
	Nodes  int   `json:"nodes"`
	Groups int64 `json:"groups"`
	People int64 `json:"people"`
	// Version and Fingerprint identify the head version (0/"" against
	// pre-event-log daemons).
	Version     int64  `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// UploadHierarchy uploads group records and builds the region tree
// server-side. Uploads are content-addressed: re-uploading the same
// groups returns the same id and costs nothing.
func (c *Client) UploadHierarchy(ctx context.Context, root string, groups []hcoc.Group) (Hierarchy, error) {
	type groupRecord struct {
		Path []string `json:"path"`
		Size int64    `json:"size"`
	}
	req := struct {
		Root   string        `json:"root"`
		Groups []groupRecord `json:"groups"`
	}{Root: root, Groups: make([]groupRecord, len(groups))}
	for i, g := range groups {
		req.Groups[i] = groupRecord{Path: g.Path, Size: g.Size}
	}
	var out Hierarchy
	err := c.do(ctx, http.MethodPost, "/v1/hierarchy", req, &out)
	return out, err
}

// Hierarchies lists the hierarchies the daemon currently holds.
func (c *Client) Hierarchies(ctx context.Context) ([]Hierarchy, error) {
	var out []Hierarchy
	err := c.do(ctx, http.MethodGet, "/v1/hierarchy", nil, &out)
	return out, err
}

// EventGroup is one group record in a hierarchy event: the leaf path
// and the group's size.
type EventGroup struct {
	Path []string `json:"path"`
	Size int64    `json:"size"`
}

// EventDrift moves Count groups at a leaf from one size to another —
// the cheap way to express a daily refresh where group memberships
// stay put but sizes move.
type EventDrift struct {
	Path  []string `json:"path"`
	From  int64    `json:"from"`
	To    int64    `json:"to"`
	Count int64    `json:"count"`
}

// Event is one hierarchy event. Type "snapshot" replaces the whole
// hierarchy (Root+Groups); type "delta" mutates it (Add/Remove/Drift).
type Event struct {
	Type   string       `json:"type"`
	Root   string       `json:"root,omitempty"`
	Groups []EventGroup `json:"groups,omitempty"`
	Add    []EventGroup `json:"add,omitempty"`
	Remove []EventGroup `json:"remove,omitempty"`
	Drift  []EventDrift `json:"drift,omitempty"`
}

// SnapshotEvent builds a snapshot event from group records.
func SnapshotEvent(root string, groups []hcoc.Group) Event {
	ev := Event{Type: "snapshot", Root: root, Groups: make([]EventGroup, len(groups))}
	for i, g := range groups {
		ev.Groups[i] = EventGroup{Path: g.Path, Size: g.Size}
	}
	return ev
}

// DeltaEvent builds a delta event.
func DeltaEvent(add, remove []EventGroup, drift []EventDrift) Event {
	return Event{Type: "delta", Add: add, Remove: remove, Drift: drift}
}

// HierarchyVersion is one immutable version of a hierarchy: the event
// sequence that produced it and the content fingerprint of its tree.
type HierarchyVersion struct {
	Version     int64     `json:"version"`
	Fingerprint string    `json:"fingerprint"`
	CreatedAt   time.Time `json:"created_at"`
	// Type is the event kind that produced the version ("snapshot" or
	// "delta").
	Type string `json:"type"`
	// Nodes and Groups summarize the version's tree.
	Nodes  int   `json:"nodes"`
	Groups int64 `json:"groups"`
}

// AppendResult reports where an event append left the hierarchy.
type AppendResult struct {
	// Hierarchy echoes the log id.
	Hierarchy string `json:"hierarchy"`
	// Applied is how many events the request applied.
	Applied int `json:"applied"`
	// Head is the resulting head version.
	Head HierarchyVersion `json:"head"`
}

// AppendEvents appends delta events to a hierarchy's log; each applied
// event is a new immutable version. ifMatch, when non-empty, is the
// expected head fingerprint: a stale value fails with
// *VersionConflictError (carrying the current head to rebase onto) and
// applies nothing.
func (c *Client) AppendEvents(ctx context.Context, hierarchy string, events []Event, ifMatch string) (AppendResult, error) {
	req := struct {
		Events []Event `json:"events"`
	}{Events: events}
	var hdr map[string]string
	if ifMatch != "" {
		hdr = map[string]string{"If-Match": `"` + strings.Trim(ifMatch, `"`) + `"`}
	}
	var out AppendResult
	err := c.doHeaders(ctx, http.MethodPost, "/v1/hierarchy/"+url.PathEscape(hierarchy)+"/events", req, &out, hdr)
	return out, err
}

// HierarchyVersions lists a hierarchy's immutable versions, oldest
// first.
func (c *Client) HierarchyVersions(ctx context.Context, hierarchy string) ([]HierarchyVersion, error) {
	var out struct {
		Versions []HierarchyVersion `json:"versions"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/hierarchy/"+url.PathEscape(hierarchy)+"/versions", nil, &out)
	return out.Versions, err
}

// ReleaseRequest parameterizes POST /v1/release. Hierarchy and Epsilon
// are required; zero values elsewhere select the server defaults
// (topdown, default K, MethodHc everywhere, weighted merge).
type ReleaseRequest struct {
	// Hierarchy is the id from UploadHierarchy.
	Hierarchy string `json:"hierarchy"`
	// Algorithm is "topdown" (default) or "bottomup".
	Algorithm string `json:"algorithm,omitempty"`
	// Epsilon is the total privacy-loss budget of this release.
	Epsilon float64 `json:"epsilon"`
	// K overrides the public group-size bound.
	K int `json:"k,omitempty"`
	// Methods gives the per-level estimation method ("hc", "hg",
	// "naive"); one entry broadcasts.
	Methods []string `json:"methods,omitempty"`
	// Merge is "weighted" (default) or "average".
	Merge string `json:"merge,omitempty"`
	// Seed makes the release reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Workers overrides the server's release parallelism.
	Workers int `json:"workers,omitempty"`
	// Version pins the hierarchy version to release (0 = head). A
	// version-pinned release stays answerable bit-for-bit after further
	// deltas move the head.
	Version int64 `json:"version,omitempty"`
}

// Release describes how a completed release request was satisfied.
type Release struct {
	// Release addresses the released histograms in queries and
	// downloads ("r-<key>").
	Release string `json:"release"`
	// Hierarchy echoes the request.
	Hierarchy string `json:"hierarchy"`
	// Algorithm and Epsilon echo what was released.
	Algorithm string  `json:"algorithm"`
	Epsilon   float64 `json:"epsilon"`
	// Nodes is the number of hierarchy nodes covered.
	Nodes int `json:"nodes"`
	// CacheHit, StoreHit, PeerHit and Deduped tell which tier satisfied
	// the request without a fresh computation. PeerHit means the serving
	// node fetched another node's artifact instead of recomputing — the
	// noise was drawn (and the budget charged) on the peer.
	CacheHit bool `json:"cache_hit"`
	StoreHit bool `json:"store_hit"`
	PeerHit  bool `json:"peer_hit"`
	Deduped  bool `json:"deduped"`
	// DurationMS is the wall time of the computation that produced the
	// release (zero for cache hits).
	DurationMS float64 `json:"duration_ms"`
	// Version and Fingerprint identify the hierarchy version released
	// (0/"" against pre-event-log daemons).
	Version     int64  `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Incremental reports whether the computation reused a prior
	// version's release state, recomputing only changed subtrees.
	Incremental bool `json:"incremental"`
	// NodesEstimated and NodesTotal count the nodes an incremental
	// computation re-estimated versus the tree total (zero when the
	// request was satisfied without computing).
	NodesEstimated int `json:"nodes_estimated,omitempty"`
	NodesTotal     int `json:"nodes_total,omitempty"`
}

// Release runs a synchronous release: the call returns when the
// histograms are computed (or served from a cache/store tier). A
// refusal for budget reasons is a *BudgetError.
func (c *Client) Release(ctx context.Context, req ReleaseRequest) (Release, error) {
	var out Release
	err := c.do(ctx, http.MethodPost, "/v1/release", req, &out)
	return out, err
}

// Job is a point-in-time snapshot of an asynchronous release job.
type Job struct {
	// Job addresses the job in polls ("j-<id>").
	Job string `json:"job"`
	// Status is "queued", "running", "done" or "failed".
	Status string `json:"status"`
	// Hierarchy echoes the submitting request (present on submission).
	Hierarchy string `json:"hierarchy,omitempty"`
	// Release addresses the completed release when Status is "done".
	Release string `json:"release,omitempty"`
	// Error is the failure message when Status is "failed".
	Error string `json:"error,omitempty"`
	// CacheHit, StoreHit, PeerHit and Deduped describe how a done job
	// was satisfied.
	CacheHit bool `json:"cache_hit"`
	StoreHit bool `json:"store_hit"`
	PeerHit  bool `json:"peer_hit"`
	Deduped  bool `json:"deduped"`
	// DurationMS is the computation wall time of a done job.
	DurationMS float64 `json:"duration_ms"`
	// CreatedAt, StartedAt and FinishedAt timestamp the lifecycle
	// (RFC 3339; empty when not reached).
	CreatedAt  string `json:"created_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

// Finished reports whether the job has reached a terminal state.
func (j Job) Finished() bool { return j.Status == "done" || j.Status == "failed" }

// ReleaseAsync submits a release as a job: the daemon answers 202
// immediately and computes in the background. Poll with Job or block
// with WaitJob. Submission is refused with a retryable 503 *APIError*
// when the daemon's job table is full (the client's retry loop already
// backs off on it).
func (c *Client) ReleaseAsync(ctx context.Context, req ReleaseRequest) (Job, error) {
	body := struct {
		ReleaseRequest
		Async bool `json:"async"`
	}{req, true}
	var out Job
	err := c.do(ctx, http.MethodPost, "/v1/release", body, &out)
	return out, err
}

// Job polls one async release job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// JobFailedError reports an async release job that finished with an
// error; the job snapshot carries the message.
type JobFailedError struct {
	// Job is the terminal snapshot, Status "failed".
	Job Job
}

// Error implements error.
func (e *JobFailedError) Error() string {
	return fmt.Sprintf("client: job %s failed: %s", e.Job.Job, e.Job.Error)
}

// WaitJob polls a job until it reaches a terminal state, every poll
// interval (0 means 100ms). A done job is returned with a nil error; a
// failed one as a *JobFailedError (with the terminal snapshot); a
// context end surfaces as the context's error.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if j.Status == "failed" {
			return j, &JobFailedError{Job: j}
		}
		if j.Finished() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, fmt.Errorf("client: %w while waiting for job %s (last status %q)", ctx.Err(), id, j.Status)
		case <-ticker.C:
		}
	}
}

// ReleaseArtifact is one durable release in the daemon's store.
type ReleaseArtifact struct {
	// Release and Hierarchy address the artifact and its tree.
	Release   string `json:"release"`
	Hierarchy string `json:"hierarchy"`
	// Algorithm and Epsilon describe the computation that produced it.
	Algorithm string  `json:"algorithm"`
	Epsilon   float64 `json:"epsilon"`
	// CostBytes is the artifact's run-accounted resident cost.
	CostBytes int64 `json:"cost_bytes"`
	// DurationMS is the original computation's wall time.
	DurationMS float64 `json:"duration_ms"`
	// CreatedAt timestamps the computation.
	CreatedAt time.Time `json:"created_at"`
}

// Releases lists the durable release artifacts (empty when the daemon
// runs without a data dir).
func (c *Client) Releases(ctx context.Context) ([]ReleaseArtifact, error) {
	var out []ReleaseArtifact
	err := c.do(ctx, http.MethodGet, "/v1/release", nil, &out)
	return out, err
}

// DownloadRelease fetches a release artifact and decodes it in
// run-length form, together with the epsilon it was released under.
func (c *Client) DownloadRelease(ctx context.Context, id string) (hcoc.SparseHistograms, float64, error) {
	var rel hcoc.SparseHistograms
	var epsilon float64
	err := c.download(ctx, "/v1/release/"+url.PathEscape(id), func(r io.Reader) error {
		var err error
		rel, epsilon, err = hcoc.ReadReleaseSparse(r)
		return err
	})
	return rel, epsilon, err
}

// DownloadReleaseBytes fetches a release artifact verbatim, without
// decoding it: format "" or "sparse" selects the run-length v2 shape,
// "dense" the v1 array shape. The gateway tier uses it to proxy
// artifacts without a redundant decode/re-encode round trip; most
// callers want DownloadRelease.
func (c *Client) DownloadReleaseBytes(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/release/" + url.PathEscape(id)
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	var out []byte
	err := c.download(ctx, path, func(r io.Reader) error {
		var err error
		out, err = io.ReadAll(r)
		return err
	})
	return out, err
}

// DownloadReleaseDense fetches a release artifact in the dense v1 array
// shape (?format=dense).
func (c *Client) DownloadReleaseDense(ctx context.Context, id string) (hcoc.Histograms, float64, error) {
	var rel hcoc.Histograms
	var epsilon float64
	err := c.download(ctx, "/v1/release/"+url.PathEscape(id)+"?format=dense", func(r io.Reader) error {
		var err error
		rel, epsilon, err = hcoc.ReadRelease(r)
		return err
	})
	return rel, epsilon, err
}

// ImportRelease PUTs a release artifact into a daemon's cache/store
// tiers — the cluster replication path: an artifact computed by one
// backend is copied into its replicas so failover reads serve the
// exact same bytes. algorithm and durationMS describe the original
// computation ("" and 0 select the defaults). The returned bool
// reports whether the daemon admitted the artifact (false = it already
// held the key; importing is idempotent). No privacy budget is spent
// server-side.
func (c *Client) ImportRelease(ctx context.Context, id, hierarchy, algorithm string, durationMS float64, rel hcoc.SparseHistograms, epsilon float64) (bool, error) {
	var buf bytes.Buffer
	if err := hcoc.WriteReleaseSparse(&buf, rel, epsilon); err != nil {
		return false, fmt.Errorf("client: encoding artifact: %w", err)
	}
	q := url.Values{}
	q.Set("hierarchy", hierarchy)
	if algorithm != "" {
		q.Set("algorithm", algorithm)
	}
	if durationMS > 0 {
		q.Set("duration_ms", strconv.FormatFloat(durationMS, 'g', -1, 64))
	}
	var out struct {
		Release  string `json:"release"`
		Imported bool   `json:"imported"`
	}
	err := c.attempt(ctx, func() error {
		return c.once(ctx, http.MethodPut, "/v1/release/"+url.PathEscape(id)+"?"+q.Encode(), buf.Bytes(), &out, nil)
	})
	return out.Imported, err
}

// download streams a GET body into decode, through the same retry loop
// as JSON calls.
func (c *Client) download(ctx context.Context, path string, decode func(io.Reader) error) error {
	return c.attempt(ctx, func() error {
		return c.downloadOnce(ctx, path, decode)
	})
}

func (c *Client) downloadOnce(ctx context.Context, path string, decode func(io.Reader) error) error {
	u := strings.TrimSuffix(c.base.String(), "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("User-Agent", c.userAgent)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("client: %w", ctxErr)
		}
		return fmt.Errorf("client: GET %s: %w", path, &transportError{err})
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.responseError(resp)
	}
	return decode(resp.Body)
}

// QueryParams selects the optional statistics of a node query; group
// count, people count, mean, median and Gini are always computed.
type QueryParams struct {
	// Quantiles lists quantiles in [0, 1] to evaluate.
	Quantiles []float64
	// KthLargest lists ranks for size-of-the-kth-largest-group queries.
	KthLargest []int64
	// TopCode, when positive, requests the census-style truncated table
	// with a final "TopCode or more" bucket.
	TopCode int
}

// QuantileValue is one evaluated quantile of a node report.
type QuantileValue struct {
	Q    float64 `json:"q"`
	Size int64   `json:"size"`
}

// OrderStat is one evaluated k-th largest group size of a node report.
type OrderStat struct {
	K    int64 `json:"k"`
	Size int64 `json:"size"`
}

// NodeReport is the answer to a node query: always-computed summary
// statistics plus whatever the parameters requested. Everything is
// post-processing of the released histograms — no privacy cost.
type NodeReport struct {
	// Node is the hierarchy node path.
	Node string `json:"node"`
	// Groups and People are the released totals.
	Groups int64 `json:"groups"`
	People int64 `json:"people"`
	// Mean, Median and Gini summarize the group-size distribution
	// (zero, not an error, on a zero-group node).
	Mean   float64 `json:"mean"`
	Median int64   `json:"median"`
	Gini   float64 `json:"gini"`
	// Quantiles and KthLargest answer the requested statistics.
	Quantiles  []QuantileValue `json:"quantiles,omitempty"`
	KthLargest []OrderStat     `json:"kth_largest,omitempty"`
	// TopCoded is the truncated table when requested.
	TopCoded hcoc.Histogram `json:"topcoded,omitempty"`
}

// Query evaluates one node of a completed release.
func (c *Client) Query(ctx context.Context, release, node string, p QueryParams) (NodeReport, error) {
	q := url.Values{}
	q.Set("release", release)
	for _, v := range p.Quantiles {
		q.Add("q", strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, k := range p.KthLargest {
		q.Add("k", strconv.FormatInt(k, 10))
	}
	if p.TopCode > 0 {
		q.Set("topcode", strconv.Itoa(p.TopCode))
	}
	var out NodeReport
	err := c.do(ctx, http.MethodGet, "/v1/query/"+escapeNodePath(node)+"?"+q.Encode(), nil, &out)
	return out, err
}

// escapeNodePath escapes a hierarchy node path for the URL while
// keeping its level separators.
func escapeNodePath(node string) string {
	segs := strings.Split(node, "/")
	for i, seg := range segs {
		segs[i] = url.PathEscape(seg)
	}
	return strings.Join(segs, "/")
}

// NodeQuery is one entry of a batch query. A plain entry (no Op, no
// Releases) evaluates node statistics against the batch's release; the
// cross-release aggregates name an op and the releases they read.
type NodeQuery struct {
	// Op selects the aggregate: "" or "stats" (node statistics, one
	// release), "emd" (drift between two releases), "delta" (group and
	// people count change between two releases), "series" (node
	// statistics across an ordered list of releases) or "compare" (two
	// full side-by-side reports, e.g. an hc release against an hg one).
	Op string `json:"op,omitempty"`
	// Releases lists the release ids the entry reads; empty means the
	// batch's release.
	Releases []string `json:"releases,omitempty"`
	// Node is the hierarchy node path to evaluate.
	Node string `json:"node"`
	// Quantiles, KthLargest and TopCode mirror QueryParams.
	Quantiles  []float64 `json:"q,omitempty"`
	KthLargest []int64   `json:"k,omitempty"`
	TopCode    int       `json:"topcode,omitempty"`
}

// SeriesPoint is one release's node report within a "series" result.
type SeriesPoint struct {
	// Release is the release id the point was evaluated on.
	Release string `json:"release"`
	NodeReport
}

// NodeResult is one result of a batch query: the payload of the entry's
// aggregate, or the error that failed this query alone. Stats entries
// fill the embedded NodeReport; cross-release entries fill the field
// matching their op.
type NodeResult struct {
	NodeReport
	// Op and Releases echo the entry as sent.
	Op       string   `json:"op,omitempty"`
	Releases []string `json:"releases,omitempty"`
	// EMD is the earthmover's distance of an "emd" entry.
	EMD *int64 `json:"emd,omitempty"`
	// GroupsDelta and PeopleDelta answer "emd" and "delta" entries:
	// second release minus first.
	GroupsDelta *int64 `json:"groups_delta,omitempty"`
	PeopleDelta *int64 `json:"people_delta,omitempty"`
	// Series answers a "series" entry, index-aligned with its releases.
	Series []SeriesPoint `json:"series,omitempty"`
	// Left and Right answer a "compare" entry, in its release order.
	Left  *NodeReport `json:"left,omitempty"`
	Right *NodeReport `json:"right,omitempty"`
	// Error names why this query failed; empty on success.
	Error string `json:"error,omitempty"`
}

// BatchQuery evaluates many queries in a single round trip and a single
// engine pass server-side: the daemon's scan-sharing planner fetches
// each distinct release once however many queries read it. release is
// the default for entries naming no releases of their own ("" is valid
// when every entry does). Results are index-aligned with the queries;
// per-query failures are reported in NodeResult.Error and do not fail
// the batch.
func (c *Client) BatchQuery(ctx context.Context, release string, queries []NodeQuery) ([]NodeResult, error) {
	req := struct {
		Release string      `json:"release"`
		Queries []NodeQuery `json:"queries"`
	}{Release: release, Queries: queries}
	var out struct {
		Results []NodeResult `json:"results"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/query/batch", req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(queries) {
		return nil, fmt.Errorf("client: batch returned %d results for %d queries", len(out.Results), len(queries))
	}
	return out.Results, nil
}

// Budget is a hierarchy's privacy-budget position.
type Budget struct {
	// Hierarchy is the id the position describes.
	Hierarchy string `json:"hierarchy"`
	// SpentEpsilon is the cumulative epsilon of actual computations.
	SpentEpsilon float64 `json:"spent_epsilon"`
	// RemainingEpsilon is what is still spendable under the bound
	// (zero when unenforced).
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	// MaxEpsilonPerHierarchy is the daemon's configured bound (zero
	// when unenforced).
	MaxEpsilonPerHierarchy float64 `json:"max_epsilon_per_hierarchy"`
	// Enforced reports whether the daemon refuses over-budget releases.
	Enforced bool `json:"enforced"`
	// Versions breaks the spend down per immutable hierarchy version
	// (empty against pre-event-log daemons).
	Versions []VersionBudget `json:"versions,omitempty"`
	// ContinualSpentEpsilon and ContinualRemainingEpsilon describe the
	// continual-observation account, which sums spend across every
	// version of the hierarchy's event log.
	ContinualSpentEpsilon     float64 `json:"continual_spent_epsilon"`
	ContinualRemainingEpsilon float64 `json:"continual_remaining_epsilon"`
	// MaxEpsilonContinual is the daemon's continual bound (zero when
	// unenforced).
	MaxEpsilonContinual float64 `json:"max_epsilon_continual"`
	// ContinualEnforced reports whether the continual bound refuses
	// over-budget releases.
	ContinualEnforced bool `json:"continual_enforced"`
}

// VersionBudget is one version's share of a hierarchy's privacy spend.
type VersionBudget struct {
	Version      int64   `json:"version"`
	Fingerprint  string  `json:"fingerprint"`
	SpentEpsilon float64 `json:"spent_epsilon"`
}

// Budget reads a hierarchy's privacy-budget position without spending
// anything.
func (c *Client) Budget(ctx context.Context, hierarchy string) (Budget, error) {
	var out Budget
	err := c.do(ctx, http.MethodGet, "/v1/budget/"+url.PathEscape(hierarchy), nil, &out)
	return out, err
}

// TenantStatus is one tenant (hierarchy) in the daemon's QoS report:
// its scheduling weight, live queue occupancy, admission counters, and
// how its requests were satisfied.
type TenantStatus struct {
	// Tenant is the hierarchy id ("h-<fingerprint>").
	Tenant string `json:"tenant"`
	// Weight is the tenant's share of the compute pool under
	// contention (default 1).
	Weight float64 `json:"weight"`
	// Active and Queued are the tenant's live compute occupancy.
	Active int `json:"active"`
	Queued int `json:"queued"`
	// Granted, Rejected and Cancelled count admission outcomes.
	Granted   uint64 `json:"granted"`
	Rejected  uint64 `json:"rejected"`
	Cancelled uint64 `json:"cancelled"`
	// QueueWaitMS is cumulative time the tenant's granted jobs spent
	// queued.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Requests through Computed break down how release requests were
	// satisfied.
	Requests  uint64 `json:"requests"`
	CacheHits uint64 `json:"cache_hits"`
	Deduped   uint64 `json:"deduped"`
	StoreHits uint64 `json:"store_hits"`
	PeerHits  uint64 `json:"peer_hits"`
	Computed  uint64 `json:"computed"`
	// EpsilonSpent is the tenant's cumulative privacy spend.
	EpsilonSpent float64 `json:"epsilon_spent"`
}

// TenantsStatus is the daemon's whole QoS picture: the compute pool,
// the read lane, and every known tenant.
type TenantsStatus struct {
	// ComputeSlots and InUse describe the shared compute pool.
	ComputeSlots int `json:"compute_slots"`
	InUse        int `json:"in_use"`
	// QueueDepth is the per-tenant queue bound; Queued and Rejected
	// aggregate across tenants.
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	Rejected   uint64 `json:"rejected"`
	// ActiveReads and Reads describe the priority read lane, which
	// never waits behind compute.
	ActiveReads uint64 `json:"active_reads"`
	Reads       uint64 `json:"reads"`
	// Tenants is sorted by tenant id.
	Tenants []TenantStatus `json:"tenants"`
}

// Tenants reads the daemon's per-tenant QoS state: who holds and waits
// for compute slots, who is being refused, and at what weight each
// tenant shares the pool.
func (c *Client) Tenants(ctx context.Context) (TenantsStatus, error) {
	var out TenantsStatus
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the daemon's Prometheus text metrics verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var out []byte
	err := c.download(ctx, "/metrics", func(r io.Reader) error {
		var err error
		out, err = io.ReadAll(r)
		return err
	})
	return string(out), err
}

// IsNotFound reports whether err is the daemon saying a resource does
// not exist (unknown hierarchy, uncached release, evicted job).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}
