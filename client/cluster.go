package client

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// ClusterClient is a Client that fails over across several equivalent
// endpoints — hcoc-gateway instances, or the backends of a cluster
// directly. Every Client method works unchanged; underneath, each
// request is tried against the targets in rotation starting from the
// last one that worked (sticky routing, so a healthy deployment pays
// no failover cost), moving to the next on connection failures and
// gateway-dead statuses (502, 504). Per-target backpressure (429, 503)
// is left to the inherited retry loop, which understands Retry-After.
//
// Failing over a request whose body has already started streaming
// requires replaying it; bodies built by this package are always
// replayable. A request that fails against every target surfaces the
// last error through the usual retry machinery.
type ClusterClient struct {
	*Client
	ft *failoverTransport
}

// NewCluster creates a client over one or more equivalent base URLs.
// Options apply as in New; the failover layer wraps whatever transport
// the resulting client uses.
func NewCluster(targets []string, opts ...Option) (*ClusterClient, error) {
	parsed, err := parseTargets(targets)
	if err != nil {
		return nil, err
	}
	c, err := New(targets[0], opts...)
	if err != nil {
		return nil, err
	}
	ft := &failoverTransport{targets: parsed, next: c.hc.Transport}
	if ft.next == nil {
		ft.next = http.DefaultTransport
	}
	// Shallow-copy the http.Client so a caller-supplied one (via
	// WithHTTPClient) is not mutated behind their back.
	hc := *c.hc
	hc.Transport = ft
	c.hc = &hc
	return &ClusterClient{Client: c, ft: ft}, nil
}

// parseTargets validates a target set: every URL needs a scheme and
// host, and — because failover rewrites only scheme and host while the
// path comes from the client's base URL — all targets must share one
// path prefix, or some would silently receive requests built for
// another prefix.
func parseTargets(targets []string) ([]*url.URL, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("client: cluster needs at least one target URL")
	}
	parsed := make([]*url.URL, len(targets))
	for i, t := range targets {
		u, err := url.Parse(t)
		if err != nil {
			return nil, fmt.Errorf("client: parsing target %q: %w", t, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("client: target URL %q needs a scheme and host", t)
		}
		parsed[i] = u
		if strings.TrimSuffix(u.Path, "/") != strings.TrimSuffix(parsed[0].Path, "/") {
			return nil, fmt.Errorf("client: target %q has path %q but %q has %q; cluster targets must share one path prefix",
				t, u.Path, targets[0], parsed[0].Path)
		}
	}
	return parsed, nil
}

// Targets lists the configured endpoints in rotation order.
func (c *ClusterClient) Targets() []string {
	return c.ft.snapshotTargets()
}

// SetTargets replaces the endpoint set at runtime, so a long-running
// caller (hcoc-load, a service holding one client for its lifetime)
// survives topology changes without reconnecting: nodes joined to the
// cluster start taking traffic, removed ones stop being tried.
// In-flight requests finish against the set they started with; the
// sticky cursor carries over when the current endpoint survives the
// change. The same validation as NewCluster applies, plus the new set
// must keep the path prefix the client's requests are built for.
func (c *ClusterClient) SetTargets(targets []string) error {
	parsed, err := parseTargets(targets)
	if err != nil {
		return err
	}
	if strings.TrimSuffix(parsed[0].Path, "/") != strings.TrimSuffix(c.base.Path, "/") {
		return fmt.Errorf("client: new targets have path %q but this client builds requests for %q",
			parsed[0].Path, c.base.Path)
	}
	c.ft.setTargets(parsed)
	return nil
}

// failoverTransport retargets requests across equivalent hosts. It
// sits below the Client's retry loop: the loop decides whether a
// request is worth re-attempting at all; this layer decides which host
// an attempt lands on, burning through dead hosts within one attempt.
type failoverTransport struct {
	next http.RoundTripper

	mu      sync.Mutex
	targets []*url.URL // replaced wholesale by setTargets, never mutated
	current int        // index of the last target that answered
}

// snapshotTargets returns the current rotation as strings.
func (t *failoverTransport) snapshotTargets() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.targets))
	for i, u := range t.targets {
		out[i] = u.String()
	}
	return out
}

// setTargets swaps in a new target set, keeping the sticky cursor on
// the current endpoint when it survives the change.
func (t *failoverTransport) setTargets(parsed []*url.URL) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := ""
	if len(t.targets) > 0 {
		cur = t.targets[t.current%len(t.targets)].String()
	}
	t.targets = parsed
	t.current = 0
	for i, u := range parsed {
		if u.String() == cur {
			t.current = i
			break
		}
	}
}

// failoverStatus reports responses that mean "this endpoint is dead or
// unreachable", not "the service refuses the request": a different
// target may genuinely succeed. Backpressure (429/503) is deliberately
// excluded — it carries Retry-After semantics the retry loop owns.
func failoverStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusGatewayTimeout
}

// RoundTrip implements http.RoundTripper.
func (t *failoverTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Snapshot the rotation: one request runs against one consistent
	// target set even if SetTargets swaps it mid-flight.
	t.mu.Lock()
	targets := t.targets
	start := t.current % len(targets)
	t.mu.Unlock()

	attempts := len(targets)
	if req.Body != nil && req.GetBody == nil {
		// The body cannot be replayed; failing over mid-stream would
		// resend a truncated request. One target only.
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := req.Context().Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		idx := (start + i) % len(targets)
		target := targets[idx]
		r := req.Clone(req.Context())
		r.URL.Scheme, r.URL.Host = target.Scheme, target.Host
		r.Host = "" // derive the Host header from the rewritten URL
		if i > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("replaying request body: %w", err)
			}
			r.Body = body
		}
		resp, err := t.next.RoundTrip(r)
		if err != nil {
			lastErr = err
			continue
		}
		if failoverStatus(resp.StatusCode) {
			if i < attempts-1 {
				resp.Body.Close()
				lastErr = fmt.Errorf("%s answered %d", target.Host, resp.StatusCode)
				continue
			}
			// Out of targets: surface the response, but do NOT stick to
			// this endpoint — it just told us it is dead, and pinning it
			// would start every future request at a known corpse.
			return resp, nil
		}
		t.mu.Lock()
		t.current = idx
		t.mu.Unlock()
		return resp, nil
	}
	return nil, lastErr
}
