package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hcoc"
)

// okServer is a minimal daemon double that counts hits and echoes a
// canned hierarchy for uploads.
func okServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Method == http.MethodPost {
			// The body must arrive whole — a failover that replays a
			// truncated body would fail decoding here.
			var req struct {
				Root   string `json:"root"`
				Groups []any  `json:"groups"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, `{"id":"h-abc","nodes":1}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"status":"ok"}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := NewCluster([]string{"not a url", "http://x"}); err == nil {
		t.Fatal("unparsable target accepted")
	}
	if _, err := NewCluster([]string{"relative/path"}); err == nil {
		t.Fatal("schemeless target accepted")
	}
	cc, err := NewCluster([]string{"http://a:1", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.Targets(); len(got) != 2 || got[0] != "http://a:1" {
		t.Fatalf("targets = %v", got)
	}
	// Failover rewrites scheme+host only, so targets must agree on the
	// path prefix: a shared one is fine, divergent ones are refused.
	if _, err := NewCluster([]string{"http://a:1/gw/", "http://b:2/gw"}); err != nil {
		t.Fatalf("shared path prefix rejected: %v", err)
	}
	if _, err := NewCluster([]string{"http://a:1/gw", "http://b:2"}); err == nil {
		t.Fatal("divergent path prefixes accepted")
	}
}

// TestSetTargets pins runtime retargeting: a swapped-in endpoint takes
// traffic, a swapped-out one is never dialed again, the sticky cursor
// survives when its endpoint does, and the validation of NewCluster
// (including the path-prefix agreement with the original base URL)
// still applies.
func TestSetTargets(t *testing.T) {
	ctx := context.Background()
	var hits1, hits2 atomic.Int64
	ts1 := okServer(t, &hits1)
	ts2 := okServer(t, &hits2)

	cc, err := NewCluster([]string{ts1.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if hits1.Load() != 1 {
		t.Fatalf("hits1 = %d", hits1.Load())
	}

	// Topology change: ts1 drains, ts2 joins.
	if err := cc.SetTargets([]string{ts2.URL}); err != nil {
		t.Fatal(err)
	}
	if got := cc.Targets(); len(got) != 1 || got[0] != ts2.URL {
		t.Fatalf("targets after swap = %v", got)
	}
	for i := 0; i < 3; i++ {
		if err := cc.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if hits1.Load() != 1 || hits2.Load() != 3 {
		t.Fatalf("hits after swap = %d, %d; the drained target kept taking traffic", hits1.Load(), hits2.Load())
	}

	// Invalid sets are refused atomically — the rotation is unchanged.
	if err := cc.SetTargets(nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if err := cc.SetTargets([]string{"relative/path"}); err == nil {
		t.Fatal("schemeless target accepted")
	}
	if err := cc.SetTargets([]string{ts2.URL + "/other-prefix"}); err == nil {
		t.Fatal("target with a different path prefix accepted")
	}
	if got := cc.Targets(); len(got) != 1 || got[0] != ts2.URL {
		t.Fatalf("targets mutated by a refused swap: %v", got)
	}
	if err := cc.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClusterFailoverOnDeadTarget: a request against a dead first
// target transparently lands on the live second one, and the client
// then sticks to the live target instead of re-dialing the corpse.
func TestClusterFailoverOnDeadTarget(t *testing.T) {
	var hits1, hits2 atomic.Int64
	t1 := okServer(t, &hits1)
	t2 := okServer(t, &hits2)

	cc, err := NewCluster([]string{t1.URL, t2.URL}, WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cc.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if hits1.Load() != 1 || hits2.Load() != 0 {
		t.Fatalf("healthy routing hit t1=%d t2=%d", hits1.Load(), hits2.Load())
	}

	t1.Close()
	// A POST with a body: the failover must replay it against t2.
	h, err := cc.UploadHierarchy(ctx, "root", []hcoc.Group{{Path: []string{"CA"}, Size: 3}})
	if err != nil {
		t.Fatalf("upload after killing t1: %v", err)
	}
	if h.ID != "h-abc" {
		t.Fatalf("upload response %+v", h)
	}
	if hits2.Load() != 1 {
		t.Fatalf("t2 hits = %d, want 1", hits2.Load())
	}

	// Sticky: the next request goes straight to t2, no dial of t1.
	if err := cc.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if hits2.Load() != 2 {
		t.Fatalf("t2 hits = %d, want 2 (client did not stick)", hits2.Load())
	}
}

// TestClusterFailoverOnGatewayStatus: 502 from one target moves to the
// next; backpressure statuses (503) do not fail over — they belong to
// the retry loop.
func TestClusterFailoverOnGatewayStatus(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dead gateway", http.StatusBadGateway)
	}))
	t.Cleanup(bad.Close)
	var hits atomic.Int64
	good := okServer(t, &hits)

	cc, err := NewCluster([]string{bad.URL, good.URL}, WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz did not fail over on 502: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("good target hits = %d", hits.Load())
	}

	var calls503 atomic.Int64
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls503.Add(1)
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	t.Cleanup(busy.Close)
	cc2, err := NewCluster([]string{busy.URL, good.URL}, WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	err = cc2.Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("503 err = %v, want APIError 503 from the first target", err)
	}
	if calls503.Load() != 1 {
		t.Fatalf("503 target called %d times", calls503.Load())
	}
}

// TestClusterAllTargetsDown: with every target dead the last transport
// error surfaces (and the retry loop treats it as retryable).
func TestClusterAllTargetsDown(t *testing.T) {
	var hits atomic.Int64
	t1 := okServer(t, &hits)
	t2 := okServer(t, &hits)
	cc, err := NewCluster([]string{t1.URL, t2.URL}, WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	t1.Close()
	t2.Close()
	if err := cc.Healthz(context.Background()); err == nil {
		t.Fatal("healthz succeeded with every target down")
	}
}
