package client_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/engine"
)

// TestImportAndRawDownload drives the replication path through the
// SDK: compute on daemon A, pull the raw artifact bytes, import into
// daemon B, and require B to serve the identical bytes with no
// budget spend. This is exactly what the gateway (and the
// anti-entropy sweeper) do per replica.
func TestImportAndRawDownload(t *testing.T) {
	tsA := newDaemon(t, engine.Options{})
	tsB := newDaemon(t, engine.Options{})
	a, b := newClient(t, tsA.URL), newClient(t, tsB.URL)
	ctx := context.Background()

	up, err := a.UploadHierarchy(ctx, "US", testGroups())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Release(ctx, client.ReleaseRequest{Hierarchy: up.ID, Epsilon: 1, K: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := a.DownloadReleaseBytes(ctx, rel.Release, "")
	if err != nil {
		t.Fatal(err)
	}
	decoded, epsilon, err := hcoc.ReadReleaseSparse(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("raw bytes do not decode: %v", err)
	}
	if epsilon != 1 {
		t.Fatalf("epsilon = %v, want 1", epsilon)
	}
	// The dense shape is a distinct artifact encoding of the same release.
	dense, err := a.DownloadReleaseBytes(ctx, rel.Release, "dense")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, dense) {
		t.Fatal("sparse and dense downloads returned identical bytes")
	}
	if _, err := a.DownloadReleaseBytes(ctx, rel.Release, "bogus"); err == nil {
		t.Fatal("bogus format succeeded")
	}

	imported, err := b.ImportRelease(ctx, rel.Release, up.ID, "topdown", 12.5, decoded, epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if !imported {
		t.Fatal("first import reported imported=false")
	}
	// Idempotent: importing the same key again is a no-op.
	again, err := b.ImportRelease(ctx, rel.Release, up.ID, "", 0, decoded, epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if again {
		t.Fatal("second import reported imported=true")
	}

	rawB, err := b.DownloadReleaseBytes(ctx, rel.Release, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rawB) {
		t.Fatal("imported artifact differs from the original bytes")
	}
	budget, err := b.Budget(ctx, up.ID)
	if err == nil && budget.SpentEpsilon != 0 {
		t.Fatalf("import spent epsilon %v on the replica", budget.SpentEpsilon)
	}
}

// TestImportReleaseRejectsBadArtifact pins the client-side encode
// error: a sparse release that cannot be serialized never leaves the
// process.
func TestImportReleaseRejectsBadArtifact(t *testing.T) {
	ts := newDaemon(t, engine.Options{})
	c := newClient(t, ts.URL)
	var bad hcoc.SparseHistograms
	if _, err := c.ImportRelease(context.Background(), "r-x", "h-x", "", 0, bad, 1); err == nil {
		t.Fatal("importing an empty artifact succeeded")
	}
}

// TestBudgetErrorString pins the typed budget-refusal error text the
// SDK surfaces to operators.
func TestBudgetErrorString(t *testing.T) {
	ts := newDaemon(t, engine.Options{MaxEpsilonPerHierarchy: 0.5})
	c := newClient(t, ts.URL)
	ctx := context.Background()
	up, err := c.UploadHierarchy(ctx, "US", testGroups())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Release(ctx, client.ReleaseRequest{Hierarchy: up.ID, Epsilon: 1, K: 50, Seed: 7})
	if err == nil {
		t.Fatal("over-budget release succeeded")
	}
	msg := fmt.Sprint(err)
	if msg == "" {
		t.Fatal("budget error has empty string form")
	}
}
