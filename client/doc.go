// Package client is the official Go SDK for an hcoc-serve daemon: a
// typed wrapper over every /v1 endpoint of the HTTP API.
//
// A Client is created once and shared:
//
//	c, err := client.New("http://localhost:8080")
//	h, err := c.UploadHierarchy(ctx, "US", groups)
//	rel, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 1})
//	results, err := c.BatchQuery(ctx, rel.Release, queries)
//
// # Transport behavior
//
// Every call takes a context and honors its deadline and cancellation,
// including while backing off between retries. Backpressure responses
// (503 job-table-full, generic 429) are retried with exponential
// backoff, honoring a server Retry-After; privacy-budget refusals —
// 429 with a machine-readable budget body — are terminal and surface
// as *BudgetError without a retry, because waiting does not replenish
// a privacy budget. Other failures are *APIError with the HTTP status
// and server message.
//
// Large request bodies (hierarchy uploads) are gzip-compressed
// automatically; responses are transparently decompressed by the
// underlying http.Transport.
//
// # Asynchronous releases
//
// ReleaseAsync submits a release job and returns immediately; WaitJob
// polls it to completion. A failed job is a *JobFailedError carrying
// the terminal snapshot.
//
// See docs/openapi.yaml in the repository for the wire-level contract
// and cmd/hcoc-load for a load generator built on this package.
package client
