package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"hcoc"
	"hcoc/client"
	"hcoc/internal/engine"
	"hcoc/internal/serve"
)

// BenchmarkBatchQuery measures the batch endpoint's reason to exist:
// answering N node queries in one round trip and one engine pass versus
// N sequential /v1/query calls. At N=16 the batch path amortizes 16
// HTTP exchanges, 16 cache reads and 16 lock acquisitions into one.
func BenchmarkBatchQuery(b *testing.B) {
	srv, err := serve.NewServer(engine.New(engine.Options{}), nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	var groups []hcoc.Group
	for leaf := 0; leaf < 16; leaf++ {
		for i := 0; i < 50; i++ {
			groups = append(groups, hcoc.Group{
				Path: []string{fmt.Sprintf("R%02d", leaf)},
				Size: int64(i%7 + 1),
			})
		}
	}
	h, err := c.UploadHierarchy(ctx, "root", groups)
	if err != nil {
		b.Fatal(err)
	}
	rel, err := c.Release(ctx, client.ReleaseRequest{Hierarchy: h.ID, Epsilon: 1, K: 100, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}

	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("root/R%02d", i)
	}
	params := client.QueryParams{Quantiles: []float64{0.5, 0.9, 0.99}, TopCode: 8}

	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sequential/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					if _, err := c.Query(ctx, rel.Release, nodes[j], params); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch/N=%d", n), func(b *testing.B) {
			qs := make([]client.NodeQuery, n)
			for j := range qs {
				qs[j] = client.NodeQuery{Node: nodes[j], Quantiles: params.Quantiles, TopCode: params.TopCode}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := c.BatchQuery(ctx, rel.Release, qs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Error != "" {
						b.Fatal(r.Error)
					}
				}
			}
		})
	}
}
