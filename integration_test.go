package hcoc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcoc/internal/histogram"
	"hcoc/internal/noise"
)

// TestEndToEndAllWorkloads releases every bundled workload at several
// configurations and checks the output constraints and sanity of the
// error.
func TestEndToEndAllWorkloads(t *testing.T) {
	for _, kind := range []DatasetKind{DatasetHousing, DatasetTaxi, DatasetRaceWhite, DatasetRaceHawaiian} {
		for _, levels := range []int{2, 3} {
			tree, err := SyntheticTree(kind, DatasetConfig{
				Seed: 1, Scale: 0.02, Levels: levels, WestCoast: levels == 3 && kind != DatasetTaxi,
			})
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, levels, err)
			}
			for _, methods := range [][]Method{{MethodHc}, {MethodHg}} {
				rel, err := Release(tree, Options{
					Epsilon: 1, K: 30000, Methods: methods, Seed: 3,
				})
				if err != nil {
					t.Fatalf("%v/%d/%v: %v", kind, levels, methods[0], err)
				}
				if err := Check(tree, rel); err != nil {
					t.Fatalf("%v/%d/%v: %v", kind, levels, methods[0], err)
				}
				// Error sanity: not absurd relative to total people.
				root := tree.Root.Hist
				if e := EMD(root, rel[tree.Root.Path]); e > root.People() {
					t.Errorf("%v/%d/%v: root EMD %d exceeds total people %d",
						kind, levels, methods[0], e, root.People())
				}
			}
		}
	}
}

// neighbor produces a histogram differing from h by one entity added to
// or removed from one group (the paper's adjacency).
func neighbor(r *rand.Rand, h histogram.Hist) histogram.Hist {
	g := h.GroupSizes()
	if len(g) == 0 {
		return h.Clone()
	}
	i := r.Intn(len(g))
	out := g.Clone()
	if r.Intn(2) == 0 || out[i] == 0 {
		out[i]++ // add one person
	} else {
		out[i]-- // remove one person
	}
	return out.Hist()
}

// TestSensitivityLemma3 checks empirically that the truncated histogram
// H' has L1 sensitivity at most 2 under entity adjacency.
func TestSensitivityLemma3(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sizes := make([]int64, 1+r.Intn(40))
		for i := range sizes {
			sizes[i] = int64(r.Intn(15))
		}
		h1 := histogram.FromSizes(sizes)
		h2 := neighbor(r, h1)
		k := 1 + r.Intn(20)
		a, b := h1.Truncate(k), h2.Truncate(k)
		var l1 int64
		for i := range a {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		return l1 <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSensitivityLemma4 checks that the cumulative histogram has L1
// sensitivity at most 1 (Lemma 4), and likewise the unattributed
// histogram (Hay et al., used in Section 4.2).
func TestSensitivityLemma4AndHg(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sizes := make([]int64, 1+r.Intn(40))
		for i := range sizes {
			sizes[i] = int64(r.Intn(15))
		}
		h1 := histogram.FromSizes(sizes)
		h2 := neighbor(r, h1)
		k := 20
		c1, c2 := h1.Truncate(k).Cumulative(), h2.Truncate(k).Cumulative()
		var l1 int64
		for i := range c1 {
			d := c1[i] - c2[i]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		if l1 > 1 {
			return false
		}
		// Hg sensitivity: same group count, sorted sizes differ by 1 in
		// total.
		g1, g2 := h1.GroupSizes(), h2.GroupSizes()
		return histogram.EMDGroupSizes(g1, g2) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGeometricMechanismDPInequality samples the geometric mechanism on
// two adjacent counts and verifies the epsilon-DP inequality
// P(M(D1)=k) <= e^eps * P(M(D2)=k) empirically (with sampling slack).
func TestGeometricMechanismDPInequality(t *testing.T) {
	const (
		eps     = 1.0
		samples = 400000
		c1, c2  = 10, 11 // adjacent counts, sensitivity 1
	)
	count1 := map[int64]float64{}
	count2 := map[int64]float64{}
	gen := noise.New(123)
	for i := 0; i < samples; i++ {
		count1[int64(c1)+gen.DoubleGeometric(1/eps)]++
		count2[int64(c2)+gen.DoubleGeometric(1/eps)]++
	}
	bound := math.Exp(eps)
	for k := int64(5); k <= 16; k++ {
		p1 := count1[k] / samples
		p2 := count2[k] / samples
		if p1 < 0.001 || p2 < 0.001 {
			continue // too rare to test reliably
		}
		if ratio := p1 / p2; ratio > bound*1.15 {
			t.Errorf("output %d: ratio %.3f exceeds e^eps = %.3f", k, ratio, bound)
		}
		if ratio := p2 / p1; ratio > bound*1.15 {
			t.Errorf("output %d: inverse ratio %.3f exceeds e^eps = %.3f", k, ratio, bound)
		}
	}
}

// TestBudgetSplitMatchesDepth indirectly verifies the composition
// accounting: a 3-level release at total epsilon 3 should have accuracy
// comparable to a single-level release at epsilon 1 (each node
// effectively sees eps=1).
func TestBudgetSplitMatchesDepth(t *testing.T) {
	tree, err := SyntheticTree(DatasetRaceWhite, DatasetConfig{
		Seed: 5, Scale: 0.05, Levels: 3, WestCoast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var threeLevel, single float64
	const runs = 5
	for i := int64(0); i < runs; i++ {
		rel, err := Release(tree, Options{Epsilon: 3, K: 20000, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		threeLevel += float64(EMD(tree.Root.Hist, rel[tree.Root.Path]))
		est, err := ReleaseSingle(tree.Root.Hist, MethodHc, Options{Epsilon: 1, K: 20000, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		single += float64(EMD(tree.Root.Hist, est))
	}
	// The hierarchical release merges information downward, so the root
	// should be no worse than ~2x a direct eps=1 estimate.
	if threeLevel > 2.5*single {
		t.Errorf("3-level root error %f too far above single-node eps=1 error %f", threeLevel, single)
	}
}

// TestFailureInjectionCorruptRelease verifies Check rejects every kind
// of constraint violation.
func TestFailureInjectionCorruptRelease(t *testing.T) {
	tree, err := BuildHierarchy("US", smallGroups(9, 300))
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() Histograms {
		rel, err := Release(tree, Options{Epsilon: 1, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	leaf := tree.Leaves()[0].Path

	corruptions := map[string]func(Histograms){
		"negative cell": func(rel Histograms) {
			h := rel[leaf].Clone()
			h = h.Pad(2)
			h[0]++
			h[1]--
			rel[leaf] = h
		},
		"wrong total": func(rel Histograms) {
			rel[leaf] = rel[leaf].Add(Histogram{1})
		},
		"broken consistency": func(rel Histograms) {
			h := rel[leaf].Clone().Pad(3)
			// Move one group between sizes only at the leaf, so the
			// parent no longer matches.
			if h[1] > 0 {
				h[1]--
				h[2]++
			} else {
				h[2]--
				h[1]++
			}
			rel[leaf] = h
		},
		"missing node": func(rel Histograms) {
			delete(rel, leaf)
		},
	}
	for name, corrupt := range corruptions {
		rel := fresh()
		if err := Check(tree, rel); err != nil {
			t.Fatalf("%s: fresh release failed check: %v", name, err)
		}
		corrupt(rel)
		if err := Check(tree, rel); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestLargeScaleRelease exercises the full pipeline at a few hundred
// thousand groups — the algorithmic regime the paper targets (all
// stages are O(G log G) or better). Skipped with -short.
func TestLargeScaleRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale release skipped in -short mode")
	}
	tree, err := SyntheticTree(DatasetHousing, DatasetConfig{
		Seed: 1, Scale: 2.0, Levels: 3, // ~400k groups over 51 states x ~40 counties
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := tree.Root.G(); g < 300000 {
		t.Fatalf("expected a large instance, got %d groups", g)
	}
	rel, err := Release(tree, Options{Epsilon: 1, K: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(tree, rel); err != nil {
		t.Fatal(err)
	}
	// The root estimate should be within a small multiple of the
	// omniscient yardstick (distinct sizes x sqrt(2)*3/eps).
	distinct := float64(tree.Root.Hist.DistinctSizes())
	yardstick := distinct * 1.4142 * 3
	if e := float64(EMD(tree.Root.Hist, rel[tree.Root.Path])); e > 50*yardstick {
		t.Errorf("root EMD %.0f too far above omniscient yardstick %.0f", e, yardstick)
	}
}
