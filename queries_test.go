package hcoc

import "testing"

func TestQueryHelpers(t *testing.T) {
	h := Histogram{0, 2, 1, 2} // sizes 1,1,2,3,3
	if got, err := KthSmallest(h, 1); err != nil || got != 1 {
		t.Errorf("KthSmallest(1) = %d (%v), want 1", got, err)
	}
	if got, err := KthLargest(h, 1); err != nil || got != 3 {
		t.Errorf("KthLargest(1) = %d (%v), want 3", got, err)
	}
	if got, err := Median(h); err != nil || got != 2 {
		t.Errorf("Median = %d (%v), want 2", got, err)
	}
	if got, err := Quantile(h, 0.9); err != nil || got != 3 {
		t.Errorf("Quantile(0.9) = %d (%v), want 3", got, err)
	}
	if got, err := MeanGroupSize(h); err != nil || got != 2 {
		t.Errorf("MeanGroupSize = %f (%v), want 2", got, err)
	}
	if got := CountAtLeast(h, 2); got != 3 {
		t.Errorf("CountAtLeast(2) = %d, want 3", got)
	}
	if g, err := Gini(h); err != nil || g <= 0 || g >= 1 {
		t.Errorf("Gini = %f (%v), want in (0, 1)", g, err)
	}
	top, err := TopCoded(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Equal(Histogram{0, 2, 3}) {
		t.Errorf("TopCoded = %v, want [0 2 3]", top)
	}
	qs, err := Quantiles(h, []float64{0, 0.5, 0.9, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 2, 3, 3} {
		if qs[i] != want {
			t.Errorf("Quantiles[%d] = %d, want %d", i, qs[i], want)
		}
	}
	if _, err := Quantiles(h, []float64{0.5, -1}); err == nil {
		t.Error("Quantiles accepted an out-of-range quantile")
	}
}

func TestPublicPrivateGroupCounts(t *testing.T) {
	tree, err := BuildHierarchy("US", smallGroups(6, 300))
	if err != nil {
		t.Fatal(err)
	}
	counts, err := PrivateGroupCounts(tree, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Parent = sum of children everywhere.
	tree.Walk(func(n *Node) {
		if n.IsLeaf() {
			return
		}
		var sum int64
		for _, c := range n.Children {
			sum += counts[c.Path]
		}
		if sum != counts[n.Path] {
			t.Errorf("node %q: children sum %d != %d", n.Path, sum, counts[n.Path])
		}
	})
}

func TestPublicEstimateK(t *testing.T) {
	h := Histogram{0, 10, 5, 0, 0, 0, 0, 0, 0, 0, 1} // max size 10
	k, err := EstimateK(h, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k < 10 {
		t.Errorf("K = %d, want >= true max 10 (with overwhelming probability)", k)
	}
	// Usable end to end.
	if _, err := ReleaseSingle(h, MethodHc, Options{Epsilon: 1, K: k, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
