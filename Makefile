# CI (.github/workflows/ci.yml) runs these same targets; keep them in sync.

GO ?= go
BASE ?= origin/main

.PHONY: all build test bench bench-compare coverage lint staticcheck fuzz serve docs-check

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark, as a smoke pass; run
# `go test -bench=. ./...` directly for real measurements.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Mirror of the CI bench job: run the full suite with -benchmem -count=5
# on HEAD and on $(BASE) (in a scratch worktree, so the working tree is
# untouched), then compare with benchstat if it is installed.
bench-compare:
	$(GO) test -run=NONE -bench=. -benchmem -count=5 ./... | tee /tmp/hcoc-bench-head.txt
	git worktree remove --force /tmp/hcoc-bench-base 2>/dev/null || true
	git worktree add --detach /tmp/hcoc-bench-base $(BASE)
	status=0; \
	(cd /tmp/hcoc-bench-base && $(GO) test -run=NONE -bench=. -benchmem -count=5 ./...) > /tmp/hcoc-bench-base.txt 2>&1 || status=$$?; \
	cat /tmp/hcoc-bench-base.txt; \
	git worktree remove --force /tmp/hcoc-bench-base; \
	exit $$status
	@if command -v benchstat >/dev/null; then \
		benchstat /tmp/hcoc-bench-base.txt /tmp/hcoc-bench-head.txt; \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);"; \
		echo "raw outputs at /tmp/hcoc-bench-base.txt and /tmp/hcoc-bench-head.txt"; \
	fi

# Coverage ratchet: total statement coverage must not drop below the
# floor recorded in .github/coverage-floor.txt. Raise the floor when
# coverage durably improves; never lower it to make CI pass.
coverage:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$NF); print $$NF}'); \
	floor=$$(cat .github/coverage-floor.txt); \
	echo "total coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the recorded floor $$floor%" >&2; exit 1; }

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Static analysis beyond vet; CI installs staticcheck, locally it is
# skipped with a note if absent.
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

# Short fuzz budget over the CSV/dataset parser and the release-artifact
# decoder, as in CI.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadGroups -fuzztime=10s ./internal/dataset
	$(GO) test -run=NONE -fuzz=FuzzDecodeRelease -fuzztime=10s .

serve:
	$(GO) run ./cmd/hcoc-serve

# Documentation contract: godoc conventions (package comments in
# doc.go, documented exported symbols) and OpenAPI route coverage
# across both serving tiers (backend + gateway).
docs-check:
	$(GO) test -run TestGodocConventions .
	$(GO) test -run 'TestOpenAPI|TestRoutesStable|TestGatewayRoutesStable' ./internal/serve ./internal/gateway
