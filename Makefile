# CI (.github/workflows/ci.yml) runs these same targets; keep them in sync.

GO ?= go

.PHONY: all build test bench lint fuzz serve

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark, as a smoke pass; run
# `go test -bench=. ./...` directly for real measurements.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Short fuzz budget over the CSV/dataset parsers, as in CI.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadGroups -fuzztime=10s ./internal/dataset

serve:
	$(GO) run ./cmd/hcoc-serve
