module hcoc

go 1.24
