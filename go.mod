module hcoc

go 1.23.0
