package hcoc_test

import (
	"fmt"

	"hcoc"
)

// ExampleRelease demonstrates a full hierarchical release: build the
// tree from group records, release all levels under one budget, and read
// consistent histograms back.
func ExampleRelease() {
	groups := []hcoc.Group{
		{Path: []string{"a"}, Size: 4},
		{Path: []string{"b"}, Size: 2},
		{Path: []string{"a"}, Size: 1},
		{Path: []string{"b"}, Size: 1},
	}
	tree, err := hcoc.BuildHierarchy("top", groups)
	if err != nil {
		panic(err)
	}
	rel, err := hcoc.Release(tree, hcoc.Options{Epsilon: 100, K: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	// At a huge epsilon the release reproduces the truth exactly; the
	// root histogram is the paper's running example Htop = [2,1,0,1]
	// (2 groups of size 1, 1 of size 2, 1 of size 4).
	fmt.Println(rel["top"][1:])
	fmt.Println(rel["top/a"].Groups(), rel["top/b"].Groups())
	// Output:
	// [2 1 0 1]
	// 2 2
}

// ExampleReleaseSingle privatizes one histogram without a hierarchy.
func ExampleReleaseSingle() {
	truth := hcoc.Histogram{0, 40, 25, 10}
	est, err := hcoc.ReleaseSingle(truth, hcoc.MethodHc, hcoc.Options{
		Epsilon: 1, K: 100, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(est.Groups() == truth.Groups())
	// Output:
	// true
}

// ExampleEMD shows why earthmover's distance is the right metric: both
// estimates move every group the same L1/L2 amount, but one moves each
// group much further.
func ExampleEMD() {
	truth := hcoc.Histogram{0, 100}    // 100 groups of size 1
	close := hcoc.Histogram{0, 0, 100} // all groups size 2
	far := hcoc.Histogram{0, 0, 0, 0, 0, 100}
	fmt.Println(hcoc.EMD(truth, close), hcoc.EMD(truth, far))
	// Output:
	// 100 400
}

// ExampleKthLargest answers an order-statistic query from a released
// histogram.
func ExampleKthLargest() {
	h := hcoc.Histogram{0, 2, 1, 2} // sizes 1,1,2,3,3
	largest, _ := hcoc.KthLargest(h, 1)
	second, _ := hcoc.KthLargest(h, 2)
	fmt.Println(largest, second)
	// Output:
	// 3 3
}
