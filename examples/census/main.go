// Census: the paper's motivating scenario — household sizes released
// consistently over a national/state/county hierarchy.
//
// The example builds the partially-synthetic housing workload (household
// sizes with a heavy group-quarters tail, Section 6.1) restricted to the
// west coast, releases all three levels under a single privacy budget,
// verifies the four output constraints, and reports per-level error.
//
// Run with: go run ./examples/census
package main

import (
	"fmt"
	"log"

	"hcoc"
)

func main() {
	tree, err := hcoc.SyntheticTree(hcoc.DatasetHousing, hcoc.DatasetConfig{
		Seed:      7,
		Scale:     0.1,
		Levels:    3,
		WestCoast: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %d levels, %d leaves, %d households, %d people\n",
		tree.Depth(), len(tree.Leaves()), tree.Root.G(), tree.Root.Hist.People())

	rel, err := hcoc.Release(tree, hcoc.Options{
		Epsilon: 1.0, // split evenly across the 3 levels
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Check the release: integral, nonnegative, group counts match the
	// public Groups table, and each parent is the sum of its children.
	if err := hcoc.Check(tree, rel); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all four release constraints verified")

	// Per-level error, the paper's evaluation metric.
	for level, nodes := range tree.ByLevel {
		var total int64
		for _, n := range nodes {
			total += hcoc.EMD(n.Hist, rel[n.Path])
		}
		fmt.Printf("level %d (%3d nodes): mean emd/node = %.1f\n",
			level, len(nodes), float64(total)/float64(len(nodes)))
	}

	// A typical query the Census publishes: households by size, 1..7+,
	// at the national level.
	national := rel[tree.Root.Path]
	truth := tree.Root.Hist
	fmt.Println("\nnational households by size (true -> released):")
	for size := 1; size <= 7 && size < len(truth); size++ {
		var released int64
		if size < len(national) {
			released = national[size]
		}
		fmt.Printf("  size %d: %7d -> %7d\n", size, truth[size], released)
	}
}
