// Taxi: skewness of pickups per taxi over the Manhattan geography
// (Section 6.1's NYC taxi workload).
//
// Each medallion (taxi) is a group whose size is its number of pickups
// in a neighborhood; the hierarchy is Manhattan / upper-lower /
// neighborhoods. The example releases the hierarchy and answers two
// skewness queries from the private data: the median and the 99th
// percentile pickup count.
//
// Run with: go run ./examples/taxi
package main

import (
	"fmt"
	"log"

	"hcoc"
)

func main() {
	tree, err := hcoc.SyntheticTree(hcoc.DatasetTaxi, hcoc.DatasetConfig{
		Seed:   11,
		Scale:  0.1,
		Levels: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manhattan: %d medallion-regions, %d pickups, %d neighborhoods\n",
		tree.Root.G(), tree.Root.Hist.People(), len(tree.Leaves()))

	rel, err := hcoc.Release(tree, hcoc.Options{
		Epsilon: 0.5,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := hcoc.Check(tree, rel); err != nil {
		log.Fatal(err)
	}

	// Count-of-counts histograms answer quantile-of-group-size queries:
	// "how many pickups does the median taxi get?"
	top := rel[tree.Root.Path]
	trueMed, _ := hcoc.Median(tree.Root.Hist)
	relMed, _ := hcoc.Median(top)
	trueP99, _ := hcoc.Quantile(tree.Root.Hist, 0.99)
	relP99, _ := hcoc.Quantile(top, 0.99)
	fmt.Printf("pickups per taxi (true -> released): median %d -> %d, p99 %d -> %d\n",
		trueMed, relMed, trueP99, relP99)

	// Skewness: how unevenly are pickups spread across taxis?
	trueGini, _ := hcoc.Gini(tree.Root.Hist)
	relGini, _ := hcoc.Gini(top)
	fmt.Printf("gini coefficient (true -> released): %.3f -> %.3f\n", trueGini, relGini)
	busiest, _ := hcoc.KthLargest(top, 1)
	fmt.Printf("busiest taxi (released): %d pickups\n", busiest)

	// Per-neighborhood totals stay consistent with the borough halves.
	for _, half := range tree.ByLevel[1] {
		var sum int64
		for _, hood := range half.Children {
			sum += rel[hood.Path].Groups()
		}
		fmt.Printf("%s: %d taxis across %d neighborhoods (consistent: %v)\n",
			half.Path, rel[half.Path].Groups(), len(half.Children),
			sum == rel[half.Path].Groups())
	}
}
