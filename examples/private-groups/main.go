// Private-groups: the "nothing is public" pipeline built from the
// paper's extensions. The main algorithm assumes the Groups table (group
// counts per region) and a maximum group size K are public; this example
// releases a hierarchy when neither is, combining:
//
//   - footnote 6: a privately estimated size bound K,
//   - footnote 4: differentially private method selection (Hc vs Hg),
//   - footnote 5: privately estimated, hierarchy-consistent group counts,
//   - the main release for the histograms themselves.
//
// The budgets of all four stages compose sequentially to a single total.
//
// Run with: go run ./examples/private-groups
package main

import (
	"fmt"
	"log"

	"hcoc"
)

func main() {
	tree, err := hcoc.SyntheticTree(hcoc.DatasetRaceHawaiian, hcoc.DatasetConfig{
		Seed: 5, Scale: 0.1, Levels: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Budget plan, enforced by an explicit ledger (total eps = 1.051).
	const (
		epsK      = 0.001 // size bound (needs almost no accuracy)
		epsSelect = 0.05  // method selection
		epsGroups = 0.2   // group counts per region
		epsMain   = 0.8   // the histograms
	)
	ledger, err := hcoc.NewAccountant(epsK + epsSelect + epsGroups + epsMain)
	if err != nil {
		log.Fatal(err)
	}
	for _, stage := range []struct {
		label string
		eps   float64
	}{
		{"size bound K", epsK},
		{"method selection", epsSelect},
		{"group counts", epsGroups},
		{"histograms", epsMain},
	} {
		if err := ledger.Spend(stage.label, stage.eps); err != nil {
			log.Fatal(err) // refuses to run rather than over-spend
		}
	}
	fmt.Printf("total privacy budget: %.3f (%d stages, %.3f unspent)\n",
		ledger.Total(), len(ledger.Log()), ledger.Remaining())

	k, err := hcoc.EstimateK(tree.Root.Hist, epsK, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private size bound K = %d (true max size %d)\n", k, tree.Root.Hist.MaxSize())

	method, err := hcoc.ChooseMethod(tree.Root.Hist, epsSelect, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected method: %v\n", method)

	counts, err := hcoc.PrivateGroupCounts(tree, epsGroups, 3)
	if err != nil {
		log.Fatal(err)
	}
	var worst int64
	tree.Walk(func(n *hcoc.Node) {
		if d := counts[n.Path] - n.G(); d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	})
	fmt.Printf("private group counts: %d regions, worst deviation %d groups\n",
		len(counts), worst)

	rel, err := hcoc.Release(tree, hcoc.Options{
		Epsilon: epsMain,
		K:       k,
		Methods: []hcoc.Method{method},
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := hcoc.Check(tree, rel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %d nodes; root emd = %d\n",
		len(rel), hcoc.EMD(tree.Root.Hist, rel[tree.Root.Path]))
}
