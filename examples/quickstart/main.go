// Quickstart: release a single differentially private count-of-counts
// histogram and compare it with the truth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hcoc"
)

func main() {
	// The true data: 40 groups of size 1, 25 of size 2, 10 of size 3,
	// none of size 4, 3 of size 5 (think: households by size in one
	// town).
	truth := hcoc.Histogram{0, 40, 25, 10, 0, 3}
	fmt.Printf("true histogram:     %v  (%d groups, %d people)\n",
		truth, truth.Groups(), truth.People())

	// Release it with the paper's recommended cumulative-histogram (Hc)
	// method at epsilon = 1.
	est, err := hcoc.ReleaseSingle(truth, hcoc.MethodHc, hcoc.Options{
		Epsilon: 1.0,
		K:       1000, // public upper bound on group size
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private histogram:  %v  (%d groups, %d people)\n",
		est, est.Groups(), est.People())

	// The earthmover's distance counts how many people would have to
	// move between groups to reconcile the two.
	fmt.Printf("earthmover error:   %d people\n", hcoc.EMD(truth, est))

	// The release always preserves the public number of groups and is
	// integral and nonnegative — only the sizes are perturbed.
	if est.Groups() != truth.Groups() {
		log.Fatal("group count was not preserved (bug)")
	}
	fmt.Println("group count preserved: yes")
}
