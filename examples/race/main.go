// Race: the dense-vs-sparse contrast of Section 6.1 — per-block counts
// of a large population (White) versus a small one (Hawaiian) — and how
// the method choice (Hc vs Hg) interacts with it.
//
// Run with: go run ./examples/race
package main

import (
	"fmt"
	"log"

	"hcoc"
)

func main() {
	for _, kind := range []hcoc.DatasetKind{hcoc.DatasetRaceWhite, hcoc.DatasetRaceHawaiian} {
		tree, err := hcoc.SyntheticTree(kind, hcoc.DatasetConfig{
			Seed: 3, Scale: 0.1, Levels: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		root := tree.Root.Hist
		fmt.Printf("%s: %d blocks, %d people, %d distinct block counts, max %d\n",
			kind, root.Groups(), root.People(), root.DistinctSizes(), root.MaxSize())

		// Compare both estimation methods at every level under the same
		// budget; the paper finds Hc better on dense data and Hg
		// competitive on sparse data with gaps.
		for _, method := range []hcoc.Method{hcoc.MethodHc, hcoc.MethodHg} {
			rel, err := hcoc.Release(tree, hcoc.Options{
				Epsilon: 1.0,
				Methods: []hcoc.Method{method},
				Seed:    3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := hcoc.Check(tree, rel); err != nil {
				log.Fatal(err)
			}
			var state int64
			for _, n := range tree.ByLevel[1] {
				state += hcoc.EMD(n.Hist, rel[n.Path])
			}
			fmt.Printf("  %-3v national emd = %6d, mean state emd = %.1f\n",
				method, hcoc.EMD(root, rel[tree.Root.Path]),
				float64(state)/float64(len(tree.ByLevel[1])))
		}
		fmt.Println()
	}
}
