package hcoc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestGodocConventions is the in-tree mirror of staticcheck's
// ST1000/ST1020-class checks, so `go test` enforces the documentation
// contract even where staticcheck is not installed:
//
//   - every package has a package comment, and library packages keep it
//     in a dedicated doc.go;
//   - every exported top-level symbol (and exported method) carries a
//     doc comment;
//   - func and type comments start with the symbol's name (articles
//     allowed on types, per the stdlib convention).
//
// Commands (package main) only need their package comment; they export
// nothing.
func TestGodocConventions(t *testing.T) {
	dirs := packageDirs(t)
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			checkPackage(t, fset, dir, name, pkg)
		}
	}
}

// packageDirs lists every directory holding non-test Go files.
func packageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

func checkPackage(t *testing.T, fset *token.FileSet, dir, name string, pkg *ast.Package) {
	t.Helper()

	// Package comment: somewhere for commands, in doc.go for libraries
	// (hcoc itself, client, internal/*).
	var commentFile string
	for path, f := range pkg.Files {
		if f.Doc != nil {
			commentFile = filepath.Base(path)
		}
	}
	if commentFile == "" {
		t.Errorf("%s: package %s has no package comment", dir, name)
	} else if name != "main" && commentFile != "doc.go" {
		t.Errorf("%s: package comment lives in %s; move it to doc.go", dir, commentFile)
	}
	if name == "main" {
		return
	}

	for path, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				checkComment(t, fset, path, d.Name.Name, d.Doc, false)
			case *ast.GenDecl:
				checkGenDecl(t, fset, path, d)
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (functions without receivers count as exported contexts).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func checkGenDecl(t *testing.T, fset *token.FileSet, path string, d *ast.GenDecl) {
	t.Helper()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			checkComment(t, fset, path, s.Name.Name, doc, true)
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				// A comment on the spec or on the enclosing const/var
				// block documents the group.
				if s.Doc == nil && d.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported %s has no doc comment", rel(fset, n.Pos(), path), n.Name)
				}
			}
		}
	}
}

// checkComment requires a doc comment that starts with the symbol's
// name; articles are tolerated for types.
func checkComment(t *testing.T, fset *token.FileSet, path, name string, doc *ast.CommentGroup, isType bool) {
	t.Helper()
	where := rel(fset, token.NoPos, path)
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		t.Errorf("%s: exported %s has no doc comment", where, name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	if strings.HasPrefix(text, "Deprecated:") {
		return
	}
	first := strings.FieldsFunc(text, func(r rune) bool { return r == ' ' || r == '\n' })[0]
	if isType {
		for _, article := range []string{"A", "An", "The"} {
			if first == article {
				rest := strings.TrimSpace(strings.TrimPrefix(text, article))
				first = strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\n' })[0]
				break
			}
		}
	}
	if trimmed := strings.TrimRight(first, ":,.'s"); trimmed != name && first != name {
		t.Errorf("%s: doc comment for %s should start with its name (got %q)", where, name, first)
	}
}

// rel renders a short location for failure messages.
func rel(fset *token.FileSet, pos token.Pos, fallback string) string {
	if pos.IsValid() {
		p := fset.Position(pos)
		return p.Filename + ":" + strconv.Itoa(p.Line)
	}
	return fallback
}
